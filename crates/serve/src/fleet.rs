//! The multi-chip shard model: a fleet of simulated NeuraChip instances
//! organised into *shard groups*, each group running its own
//! [`ChipConfig`] — so a fleet can mix Tile-64 shards for heavy requests
//! with Tile-4 shards for light ones.
//!
//! Shards carry no per-request state — the queueing simulation holds the
//! backlog centrally — so a shard is a busy-until horizon, an active flag
//! (autoscaling provisions and retires shards over time) and the counters
//! behind the per-shard/per-group utilisation and shard-seconds metrics.
//! *Which* idle shard a batch lands on is the dispatch policy's decision
//! (see [`crate::dispatch`]); the fleet only answers questions and keeps
//! the books.

use neura_chip::config::ChipConfig;

/// Spec-level description of one shard group: `shards` replicas of one
/// chip configuration under a stable short name.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardGroup {
    /// Stable short name, used in run IDs and per-group records ("t64").
    pub name: String,
    /// The configuration every shard of the group runs.
    pub config: ChipConfig,
    /// Initial (and, without autoscaling, fixed) shard count.
    pub shards: usize,
}

impl ShardGroup {
    /// Creates a group.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0`.
    pub fn new(name: impl Into<String>, config: ChipConfig, shards: usize) -> Self {
        assert!(shards >= 1, "a shard group needs at least one shard");
        ShardGroup { name: name.into(), config, shards }
    }
}

/// The number of shards lane `lane` receives in a `lanes`-way round-robin
/// split of a `shards`-shard group: `shards / lanes`, plus one for the
/// first `shards % lanes` lanes. The shares sum to `shards` exactly.
pub fn lane_share(shards: usize, lane: usize, lanes: usize) -> usize {
    shards / lanes + usize::from(lane < shards % lanes)
}

/// Lane `lane` of a `lanes`-way split of a fleet: every group keeps its
/// name and chip configuration but holds only its [`lane_share`] of the
/// shards, so the lane prices requests against the same cost-table
/// fingerprints as the full fleet. Used by the engine's closed-loop lane
/// decomposition (`crate::engine`), which guarantees every group's share
/// is non-empty by clamping the lane count to the smallest group.
///
/// # Panics
///
/// Panics when `lane >= lanes`, or when a group's share would be empty.
pub fn lane_groups(groups: &[ShardGroup], lane: usize, lanes: usize) -> Vec<ShardGroup> {
    assert!(lanes >= 1 && lane < lanes, "lane index must lie within the lane count");
    groups
        .iter()
        .map(|g| {
            ShardGroup::new(g.name.clone(), g.config.clone(), lane_share(g.shards, lane, lanes))
        })
        .collect()
}

/// Aggregate counters of one shard over a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardStats {
    /// Total seconds the shard spent serving batches.
    pub busy_s: f64,
    /// Batches the shard served.
    pub batches: u64,
    /// Requests the shard served (across all its batches).
    pub requests: u64,
}

/// Aggregate counters of one shard group over a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// The group's name.
    pub name: String,
    /// Allocated shard slots (the autoscaler's upper bound; equals the
    /// spec'd count for fixed fleets).
    pub capacity: usize,
    /// Total seconds the group's shards spent serving batches.
    pub busy_s: f64,
    /// Batches the group served.
    pub batches: u64,
    /// Requests the group served.
    pub requests: u64,
    /// Provisioned shard-seconds: the integral of the group's active shard
    /// count over time — the cost an operator pays for the capacity,
    /// whether or not it was busy.
    pub shard_seconds: f64,
    /// Largest number of simultaneously active shards.
    pub peak_active: usize,
}

/// Static per-group information the dispatch policies read.
#[derive(Debug, Clone)]
struct GroupInfo {
    name: String,
    fingerprint: String,
    peak_gflops: f64,
    capacity: usize,
    first_shard: usize,
}

/// A fleet of accelerator shards organised into groups.
///
/// Shard indices are global and stable: group 0's slots come first, then
/// group 1's, and so on; a group's slots never move, whether active or not.
#[derive(Debug, Clone)]
pub struct ShardFleet {
    groups: Vec<GroupInfo>,
    shard_group: Vec<usize>,
    busy_until: Vec<f64>,
    active: Vec<bool>,
    stats: Vec<ShardStats>,
    active_seconds: Vec<f64>,
    peak_active: Vec<usize>,
}

impl ShardFleet {
    /// Creates a fleet with every spec'd shard active. `capacity_per_group`
    /// optionally over-allocates slots (the autoscaler's `max`); `None`
    /// sizes each group exactly to its spec.
    ///
    /// # Panics
    ///
    /// Panics when `groups` is empty, any group capacity is below its
    /// initial shard count, or two groups share a name.
    pub fn new(groups: &[ShardGroup], capacity_per_group: Option<&[usize]>) -> Self {
        assert!(!groups.is_empty(), "a fleet needs at least one shard group");
        if let Some(caps) = capacity_per_group {
            assert_eq!(caps.len(), groups.len(), "one capacity per group");
        }
        let mut infos = Vec::with_capacity(groups.len());
        let mut shard_group = Vec::new();
        let mut active = Vec::new();
        let mut peak_active = Vec::with_capacity(groups.len());
        for (g, group) in groups.iter().enumerate() {
            assert!(
                infos.iter().all(|i: &GroupInfo| i.name != group.name),
                "duplicate shard-group name {:?}",
                group.name
            );
            let capacity = capacity_per_group.map(|caps| caps[g]).unwrap_or(group.shards);
            assert!(
                capacity >= group.shards,
                "group {:?} capacity {capacity} is below its initial {} shards",
                group.name,
                group.shards
            );
            infos.push(GroupInfo {
                name: group.name.clone(),
                fingerprint: group.config.fingerprint(),
                peak_gflops: group.config.peak_gflops(),
                capacity,
                first_shard: shard_group.len(),
            });
            for slot in 0..capacity {
                shard_group.push(g);
                active.push(slot < group.shards);
            }
            peak_active.push(group.shards);
        }
        let total = shard_group.len();
        ShardFleet {
            groups: infos,
            shard_group,
            busy_until: vec![0.0; total],
            active,
            stats: vec![ShardStats::default(); total],
            active_seconds: vec![0.0; groups.len()],
            peak_active,
        }
    }

    /// Number of shard groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total allocated shard slots (active or not).
    pub fn capacity(&self) -> usize {
        self.shard_group.len()
    }

    /// Whether the fleet has no slots (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.shard_group.is_empty()
    }

    /// The group a shard slot belongs to.
    pub fn group_of(&self, shard: usize) -> usize {
        self.shard_group[shard]
    }

    /// The cost-table fingerprint of a group's configuration.
    pub fn fingerprint(&self, group: usize) -> &str {
        &self.groups[group].fingerprint
    }

    /// The fingerprint of the group a shard belongs to.
    pub fn shard_fingerprint(&self, shard: usize) -> &str {
        self.fingerprint(self.shard_group[shard])
    }

    /// A group's peak throughput (the class-affinity ranking signal).
    pub fn peak_gflops(&self, group: usize) -> f64 {
        self.groups[group].peak_gflops
    }

    /// A group's name.
    pub fn group_name(&self, group: usize) -> &str {
        &self.groups[group].name
    }

    /// When a shard's current batch finishes (0 when it never served one).
    pub fn busy_until(&self, shard: usize) -> f64 {
        self.busy_until[shard]
    }

    /// Whether a shard slot is currently provisioned.
    pub fn is_active(&self, shard: usize) -> bool {
        self.active[shard]
    }

    /// Number of active shards across the fleet.
    pub fn active_shards(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Number of active shards in one group.
    pub fn active_in_group(&self, group: usize) -> usize {
        self.group_slots(group).filter(|&s| self.active[s]).count()
    }

    /// Global slot indices of one group.
    fn group_slots(&self, group: usize) -> std::ops::Range<usize> {
        let info = &self.groups[group];
        info.first_shard..info.first_shard + info.capacity
    }

    /// The active shards that are idle at `now`, in slot order — the
    /// candidate set every dispatch policy chooses from.
    pub fn idle_shards(&self, now: f64) -> Vec<usize> {
        (0..self.capacity()).filter(|&s| self.active[s] && self.busy_until[s] <= now).collect()
    }

    /// The earliest time any active shard becomes free.
    pub fn next_free_at(&self) -> f64 {
        self.busy_until
            .iter()
            .zip(&self.active)
            .filter(|&(_, &active)| active)
            .map(|(&until, _)| until)
            .fold(f64::INFINITY, f64::min)
    }

    /// The earliest *future* release: the smallest busy-until strictly
    /// beyond `now` over active shards (infinity when nothing is busy).
    /// The event the simulation waits on while a dispatch policy holds a
    /// batch for busy preferred silicon even though other shards idle.
    pub fn next_busy_free_at(&self, now: f64) -> f64 {
        self.busy_until
            .iter()
            .zip(&self.active)
            .filter(|&(&until, &active)| active && until > now)
            .map(|(&until, _)| until)
            .fold(f64::INFINITY, f64::min)
    }

    /// Starts a batch of `requests` requests on `shard` at `now` for
    /// `service_s` seconds; returns the batch completion time.
    ///
    /// # Panics
    ///
    /// Panics when the shard is inactive or still busy at `now` — the
    /// simulation only dispatches to idle, provisioned shards.
    pub fn dispatch(&mut self, shard: usize, now: f64, service_s: f64, requests: u64) -> f64 {
        assert!(self.active[shard], "shard {shard} is not provisioned at {now}");
        assert!(
            self.busy_until[shard] <= now,
            "shard {shard} is busy until {} at {now}",
            self.busy_until[shard]
        );
        let finish = now + service_s;
        self.busy_until[shard] = finish;
        self.stats[shard].busy_s += service_s;
        self.stats[shard].batches += 1;
        self.stats[shard].requests += requests;
        finish
    }

    /// Activates one inactive slot of `group` (lowest slot index first).
    /// Returns the slot, or `None` when the group is at capacity.
    pub fn activate(&mut self, group: usize, now: f64) -> Option<usize> {
        let slot = self.group_slots(group).find(|&s| !self.active[s])?;
        self.active[slot] = true;
        // A freshly provisioned shard starts idle *now* — any busy horizon
        // left from a previous activation period is history.
        self.busy_until[slot] = self.busy_until[slot].max(now);
        let active = self.active_in_group(group);
        self.peak_active[group] = self.peak_active[group].max(active);
        Some(slot)
    }

    /// Deactivates one *idle* active slot of `group` (highest slot index
    /// first, so slot 0 — the always-on baseline shard — retires last).
    /// Returns the slot, or `None` when no active slot is idle at `now`.
    pub fn deactivate_idle(&mut self, group: usize, now: f64) -> Option<usize> {
        let slot =
            self.group_slots(group).rev().find(|&s| self.active[s] && self.busy_until[s] <= now)?;
        self.deactivate_slot(slot);
        Some(slot)
    }

    /// Crashes an active slot at `now`: the slot deactivates through the
    /// same removal path a scale-down uses — except a crash does not wait
    /// for idleness. Any unfinished batch is retracted from the slot's
    /// books: the remaining service time is refunded from `busy_s` and the
    /// batch/request counters roll back, so the shard that eventually
    /// re-serves the work accounts for it exactly once.
    /// `in_flight_requests` is the size of the interrupted batch (0 when
    /// the shard crashed idle); the caller re-queues those requests.
    ///
    /// Returns whether the slot was mid-batch when it crashed.
    ///
    /// # Panics
    ///
    /// Panics when the slot is not active, or `in_flight_requests`
    /// disagrees with the slot's busy state.
    pub fn crash(&mut self, slot: usize, now: f64, in_flight_requests: u64) -> bool {
        assert!(self.active[slot], "only an active shard can crash");
        let was_busy = self.busy_until[slot] > now;
        assert_eq!(
            was_busy,
            in_flight_requests > 0,
            "a busy shard crashes with its batch, an idle one with none"
        );
        if was_busy {
            let remaining = self.busy_until[slot] - now;
            self.stats[slot].busy_s -= remaining;
            self.stats[slot].batches -= 1;
            self.stats[slot].requests -= in_flight_requests;
            self.busy_until[slot] = now;
        }
        self.deactivate_slot(slot);
        was_busy
    }

    /// The single removal primitive behind both [`Self::deactivate_idle`]
    /// (voluntary scale-down) and [`Self::crash`] (forced removal): a
    /// deactivated slot stops accruing shard-seconds and re-enters the
    /// pool [`Self::activate`] provisions from.
    fn deactivate_slot(&mut self, slot: usize) {
        self.active[slot] = false;
    }

    /// Accrues `dt` seconds of provisioned time to every active shard —
    /// the simulation calls this once per time step, making
    /// [`GroupStats::shard_seconds`] the exact integral of active capacity.
    pub fn accrue(&mut self, dt: f64) {
        for (g, info) in self.groups.iter().enumerate() {
            let active = (info.first_shard..info.first_shard + info.capacity)
                .filter(|&s| self.active[s])
                .count();
            self.active_seconds[g] += active as f64 * dt;
        }
    }

    /// Per-shard counters, in slot order.
    pub fn stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// Per-group aggregates, in group order.
    pub fn group_stats(&self) -> Vec<GroupStats> {
        self.groups
            .iter()
            .enumerate()
            .map(|(g, info)| {
                let slots = info.first_shard..info.first_shard + info.capacity;
                let mut stats = GroupStats {
                    name: info.name.clone(),
                    capacity: info.capacity,
                    busy_s: 0.0,
                    batches: 0,
                    requests: 0,
                    shard_seconds: self.active_seconds[g],
                    peak_active: self.peak_active[g],
                };
                for s in slots {
                    stats.busy_s += self.stats[s].busy_s;
                    stats.batches += self.stats[s].batches;
                    stats.requests += self.stats[s].requests;
                }
                stats
            })
            .collect()
    }

    /// The group → shard-slot mapping, one group index per slot.
    pub fn shard_groups(&self) -> &[usize] {
        &self.shard_group
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_groups() -> Vec<ShardGroup> {
        vec![
            ShardGroup::new("t64", ChipConfig::tile_64(), 1),
            ShardGroup::new("t4", ChipConfig::tile_4(), 2),
        ]
    }

    #[test]
    fn slots_are_grouped_and_fingerprinted() {
        let fleet = ShardFleet::new(&two_groups(), None);
        assert_eq!(fleet.capacity(), 3);
        assert_eq!(fleet.group_count(), 2);
        assert_eq!(fleet.shard_groups(), &[0, 1, 1]);
        assert_eq!(fleet.fingerprint(0), ChipConfig::tile_64().fingerprint());
        assert_eq!(fleet.shard_fingerprint(2), ChipConfig::tile_4().fingerprint());
        assert!(fleet.peak_gflops(0) > fleet.peak_gflops(1));
        assert_eq!(fleet.group_name(1), "t4");
        assert_eq!(fleet.active_shards(), 3);
    }

    #[test]
    fn dispatch_tracks_busy_horizon_and_stats() {
        let mut fleet = ShardFleet::new(&two_groups(), None);
        assert_eq!(fleet.idle_shards(0.0), vec![0, 1, 2]);
        fleet.dispatch(0, 0.0, 2.0, 4);
        fleet.dispatch(1, 0.0, 1.0, 1);
        assert_eq!(fleet.idle_shards(0.5), vec![2]);
        assert_eq!(fleet.idle_shards(1.5), vec![1, 2]);
        assert!((fleet.next_free_at() - 0.0).abs() < 1e-12, "shard 2 is already free");
        fleet.dispatch(2, 0.0, 3.0, 1);
        assert!((fleet.next_free_at() - 1.0).abs() < 1e-12);
        let stats = fleet.stats()[0];
        assert!((stats.busy_s - 2.0).abs() < 1e-12);
        assert_eq!((stats.batches, stats.requests), (1, 4));
    }

    #[test]
    fn group_stats_aggregate_their_slots() {
        let mut fleet = ShardFleet::new(&two_groups(), None);
        fleet.dispatch(1, 0.0, 1.0, 2);
        fleet.dispatch(2, 0.0, 3.0, 1);
        fleet.accrue(4.0);
        let groups = fleet.group_stats();
        assert_eq!(groups[0].name, "t64");
        assert_eq!(groups[1].requests, 3);
        assert!((groups[1].busy_s - 4.0).abs() < 1e-12);
        assert!((groups[0].shard_seconds - 4.0).abs() < 1e-12, "1 active shard x 4 s");
        assert!((groups[1].shard_seconds - 8.0).abs() < 1e-12, "2 active shards x 4 s");
        assert_eq!(groups[1].peak_active, 2);
    }

    #[test]
    fn activation_and_deactivation_respect_capacity_and_idleness() {
        let groups = vec![ShardGroup::new("t16", ChipConfig::tile_16(), 1)];
        let mut fleet = ShardFleet::new(&groups, Some(&[3]));
        assert_eq!(fleet.capacity(), 3);
        assert_eq!(fleet.active_shards(), 1, "over-allocated slots start inactive");
        assert_eq!(fleet.idle_shards(0.0), vec![0]);

        assert_eq!(fleet.activate(0, 1.0), Some(1));
        assert_eq!(fleet.activate(0, 1.0), Some(2));
        assert_eq!(fleet.activate(0, 1.0), None, "at capacity");
        assert_eq!(fleet.active_in_group(0), 3);

        fleet.dispatch(2, 1.0, 5.0, 1);
        fleet.dispatch(0, 1.0, 1.0, 1);
        // Highest *idle* slot retires first: slots 0 and 2 are busy, so
        // slot 1 goes; after that nothing is idle, so nothing retires.
        assert_eq!(fleet.deactivate_idle(0, 1.0), Some(1));
        assert_eq!(fleet.deactivate_idle(0, 1.0), None, "remaining active slots are busy");
        assert_eq!(fleet.active_shards(), 2);
        assert_eq!(fleet.group_stats()[0].peak_active, 3);
    }

    #[test]
    fn crash_retracts_the_interrupted_batch_and_frees_the_slot() {
        let groups = vec![ShardGroup::new("t16", ChipConfig::tile_16(), 2)];
        let mut fleet = ShardFleet::new(&groups, None);
        fleet.dispatch(0, 0.0, 4.0, 3);
        assert!(fleet.crash(0, 1.0, 3), "mid-batch crash");
        assert!(!fleet.is_active(0));
        assert_eq!(fleet.active_shards(), 1);
        // The unfinished 3 s of service refund; the 1 s the slot actually
        // occupied stays on its books, but the batch/request counters roll
        // back entirely — the work never completed here.
        let stats = fleet.stats()[0];
        assert!((stats.busy_s - 1.0).abs() < 1e-12);
        assert_eq!((stats.batches, stats.requests), (0, 0));
        // A crashed slot re-enters the provisioning pool like any retired
        // slot, and comes back idle.
        assert_eq!(fleet.activate(0, 2.0), Some(0));
        assert!(fleet.idle_shards(2.0).contains(&0));
    }

    #[test]
    fn idle_crashes_remove_capacity_without_touching_the_books() {
        let groups = vec![ShardGroup::new("t16", ChipConfig::tile_16(), 2)];
        let mut fleet = ShardFleet::new(&groups, None);
        fleet.dispatch(0, 0.0, 1.0, 1);
        assert!(!fleet.crash(0, 5.0, 0), "the batch finished long before the crash");
        let stats = fleet.stats()[0];
        assert!((stats.busy_s - 1.0).abs() < 1e-12);
        assert_eq!((stats.batches, stats.requests), (1, 1));
        assert_eq!(fleet.active_shards(), 1);
    }

    #[test]
    #[should_panic(expected = "crashes with its batch")]
    fn crash_bookkeeping_must_match_the_busy_state() {
        let groups = vec![ShardGroup::new("t16", ChipConfig::tile_16(), 1)];
        let mut fleet = ShardFleet::new(&groups, None);
        fleet.dispatch(0, 0.0, 2.0, 2);
        fleet.crash(0, 1.0, 0);
    }

    #[test]
    fn reactivated_slots_start_idle() {
        let groups = vec![ShardGroup::new("t16", ChipConfig::tile_16(), 1)];
        let mut fleet = ShardFleet::new(&groups, Some(&[2]));
        fleet.activate(0, 0.0);
        fleet.dispatch(1, 0.0, 1.0, 1);
        assert_eq!(fleet.deactivate_idle(0, 1.0), Some(1));
        // Re-provision later: the old busy horizon must not bleed through.
        assert_eq!(fleet.activate(0, 5.0), Some(1));
        assert!(fleet.idle_shards(5.0).contains(&1));
    }

    #[test]
    #[should_panic(expected = "is busy until")]
    fn dispatching_to_a_busy_shard_is_a_bug() {
        let mut fleet = ShardFleet::new(&two_groups(), None);
        fleet.dispatch(0, 0.0, 2.0, 1);
        fleet.dispatch(0, 1.0, 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard group")]
    fn empty_fleet_is_rejected() {
        ShardFleet::new(&[], None);
    }

    #[test]
    #[should_panic(expected = "duplicate shard-group name")]
    fn duplicate_group_names_are_rejected() {
        let groups = vec![
            ShardGroup::new("t16", ChipConfig::tile_16(), 1),
            ShardGroup::new("t16", ChipConfig::tile_16(), 1),
        ];
        ShardFleet::new(&groups, None);
    }
}
