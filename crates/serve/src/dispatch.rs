//! Class-aware shard dispatch: which idle shard a ready batch lands on.
//!
//! The scheduling [`Policy`](crate::policy::Policy) decides *what* to
//! dispatch next; a [`DispatchPolicy`] decides *where*. With homogeneous
//! fleets the two questions were one — any idle shard is as good as any
//! other — but a heterogeneous fleet makes placement a real decision:
//! sending a heavyweight request to a Tile-4 shard wastes the Tile-64
//! silicon bought for exactly that class. Three implementations ship:
//!
//! - [`LeastLoaded`] — the classic work-conserving default: the idle shard
//!   that has been idle longest (earliest busy-until, ties by slot index).
//! - [`ClassAffinity`] — big classes (flops at or above the memoised
//!   median) prefer the group with the highest peak throughput, small
//!   classes the lowest; within the preferred group, least-loaded. When
//!   the preferred group is fully busy, it compares *waiting* for it
//!   (remaining busy time plus service there) against serving immediately
//!   on the best idle off-group shard, and holds the batch when waiting is
//!   cheaper — dumping a Tile-64-class request onto an idle Tile-4 shard
//!   is exactly the tail-latency mistake this policy exists to avoid.
//! - [`CostAware`] — the idle shard with the lowest memoised service time
//!   for this batch (ties by least-loaded, then slot index); greedy and
//!   never waits.
//!
//! Every choice is a pure function of `(fleet state, class, costs)`, so
//! replays stay deterministic.

use crate::cost::{CostTable, RequestClass};
use crate::fleet::ShardFleet;

/// Picks a shard for a ready batch among the currently idle ones.
pub trait DispatchPolicy {
    /// Stable lower-case name, used in run IDs and command lines.
    fn name(&self) -> &'static str;

    /// Chooses one of `idle` (non-empty, slot-ordered, all idle and active)
    /// for a batch of `batch` requests of `class` at time `now`, or `None`
    /// to hold the batch until a busy shard frees up (only allowed while
    /// one exists — the simulation re-offers the batch at that event).
    fn choose(
        &self,
        fleet: &ShardFleet,
        idle: &[usize],
        class: RequestClass,
        batch: usize,
        now: f64,
        costs: &CostTable,
    ) -> Option<usize>;
}

/// The shard idle longest wins (earliest busy-until, ties by slot index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeastLoaded;

/// Least-loaded restricted to `idle`, as a helper for the other policies.
fn least_loaded_of(fleet: &ShardFleet, idle: &[usize]) -> usize {
    *idle
        .iter()
        .min_by(|&&a, &&b| {
            fleet
                .busy_until(a)
                .partial_cmp(&fleet.busy_until(b))
                .expect("busy horizons are finite")
                .then(a.cmp(&b))
        })
        .expect("dispatch requires at least one idle shard")
}

impl DispatchPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn choose(
        &self,
        fleet: &ShardFleet,
        idle: &[usize],
        _class: RequestClass,
        _batch: usize,
        _now: f64,
        _costs: &CostTable,
    ) -> Option<usize> {
        Some(least_loaded_of(fleet, idle))
    }
}

/// Big classes go to the biggest silicon, small classes to the smallest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassAffinity;

impl DispatchPolicy for ClassAffinity {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn choose(
        &self,
        fleet: &ShardFleet,
        idle: &[usize],
        class: RequestClass,
        batch: usize,
        now: f64,
        costs: &CostTable,
    ) -> Option<usize> {
        // A class is "big" when its work sits at or above the median of the
        // memoised classes; big prefers the highest-throughput group, small
        // the lowest (ties by group index, so the preference is stable).
        let big = costs.weight(class) >= costs.median_weight();
        let preferred = (0..fleet.group_count())
            .max_by(|&a, &b| {
                let (ga, gb) = (fleet.peak_gflops(a), fleet.peak_gflops(b));
                let ordering = ga.partial_cmp(&gb).expect("peak throughput is finite");
                // For "small", invert the throughput ordering; break ties
                // toward the lower group index in both directions.
                (if big { ordering } else { ordering.reverse() }).then(b.cmp(&a))
            })
            .expect("fleets have at least one group");
        let in_group: Vec<usize> =
            idle.iter().copied().filter(|&s| fleet.group_of(s) == preferred).collect();
        if !in_group.is_empty() {
            return Some(least_loaded_of(fleet, &in_group));
        }
        // The preferred group is fully busy. An off-group shard only gets
        // the batch when serving there *now* beats waiting for the
        // preferred group (earliest release + service on the right
        // silicon) — otherwise hold the batch; a queued millisecond is
        // cheaper than a misplaced batch on 4x-slower silicon.
        let preferred_free = (0..fleet.capacity())
            .filter(|&s| fleet.is_active(s) && fleet.group_of(s) == preferred)
            .map(|s| fleet.busy_until(s))
            .fold(f64::INFINITY, f64::min);
        let wait_cost = (preferred_free - now).max(0.0)
            + costs.service_seconds(fleet.fingerprint(preferred), class, batch);
        let off_group = CostAware.choose(fleet, idle, class, batch, now, costs)?;
        let off_cost = costs.service_seconds(fleet.shard_fingerprint(off_group), class, batch);
        if preferred_free.is_finite() && wait_cost <= off_cost {
            None
        } else {
            Some(off_group)
        }
    }
}

/// The idle shard with the lowest memoised service time for this batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostAware;

impl DispatchPolicy for CostAware {
    fn name(&self) -> &'static str {
        "cost"
    }

    fn choose(
        &self,
        fleet: &ShardFleet,
        idle: &[usize],
        class: RequestClass,
        batch: usize,
        _now: f64,
        costs: &CostTable,
    ) -> Option<usize> {
        idle.iter()
            .min_by(|&&a, &&b| {
                let sa = costs.service_seconds(fleet.shard_fingerprint(a), class, batch);
                let sb = costs.service_seconds(fleet.shard_fingerprint(b), class, batch);
                sa.partial_cmp(&sb)
                    .expect("service times are finite")
                    .then(
                        fleet
                            .busy_until(a)
                            .partial_cmp(&fleet.busy_until(b))
                            .expect("busy horizons are finite"),
                    )
                    .then(a.cmp(&b))
            })
            .copied()
    }
}

/// The dispatch policies as a sweepable, parseable axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchKind {
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`ClassAffinity`].
    ClassAffinity,
    /// [`CostAware`].
    CostAware,
}

impl DispatchKind {
    /// Every supported dispatch policy, default first.
    pub const ALL: [DispatchKind; 3] =
        [DispatchKind::LeastLoaded, DispatchKind::ClassAffinity, DispatchKind::CostAware];

    /// The policy implementation this kind names.
    pub fn policy(&self) -> &'static dyn DispatchPolicy {
        match self {
            DispatchKind::LeastLoaded => &LeastLoaded,
            DispatchKind::ClassAffinity => &ClassAffinity,
            DispatchKind::CostAware => &CostAware,
        }
    }

    /// Stable lower-case name, used in run IDs and command lines.
    pub fn name(&self) -> &'static str {
        self.policy().name()
    }

    /// Parses a policy name (`"least-loaded"`, `"affinity"`, `"cost"`;
    /// case-insensitive).
    pub fn parse(raw: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ClassCost;
    use crate::fleet::ShardGroup;
    use neura_chip::config::ChipConfig;

    /// One Tile-64 shard (slot 0) + two Tile-4 shards (slots 1, 2), with a
    /// big class that is 8x cheaper on the Tile-64 and a small class that
    /// costs about the same everywhere.
    fn fixture() -> (ShardFleet, CostTable, RequestClass, RequestClass) {
        let groups = vec![
            ShardGroup::new("t64", ChipConfig::tile_64(), 1),
            ShardGroup::new("t4", ChipConfig::tile_4(), 2),
        ];
        let fleet = ShardFleet::new(&groups, None);
        let mut costs = CostTable::new();
        let t64 = costs.register(&ChipConfig::tile_64());
        let t4 = costs.register(&ChipConfig::tile_4());
        let big = RequestClass { dataset: 0, shrink: 1 };
        let small = RequestClass { dataset: 0, shrink: 4 };
        costs.insert(&t64, big, ClassCost { cycles: 1_000_000, flops: 1_000_000 });
        costs.insert(&t4, big, ClassCost { cycles: 8_000_000, flops: 1_000_000 });
        costs.insert(&t64, small, ClassCost { cycles: 40_000, flops: 1_000 });
        costs.insert(&t4, small, ClassCost { cycles: 50_000, flops: 1_000 });
        (fleet, costs, big, small)
    }

    #[test]
    fn least_loaded_picks_the_longest_idle_then_lowest_index() {
        let (mut fleet, costs, big, _) = fixture();
        fleet.dispatch(0, 0.0, 2.0, 1);
        fleet.dispatch(1, 0.0, 1.0, 1);
        // At t=3 all are idle; shard 2 never worked (busy_until 0 < 1 < 2).
        let idle = fleet.idle_shards(3.0);
        assert_eq!(LeastLoaded.choose(&fleet, &idle, big, 1, 3.0, &costs), Some(2));
        // Fresh fleet: all tie at 0.0, lowest index wins.
        let (fleet, costs, big, _) = fixture();
        let idle = fleet.idle_shards(0.0);
        assert_eq!(LeastLoaded.choose(&fleet, &idle, big, 1, 0.0, &costs), Some(0));
    }

    #[test]
    fn affinity_routes_big_to_big_silicon_and_small_to_small() {
        let (fleet, costs, big, small) = fixture();
        let idle = fleet.idle_shards(0.0);
        assert_eq!(
            ClassAffinity.choose(&fleet, &idle, big, 1, 0.0, &costs),
            Some(0),
            "big -> Tile-64"
        );
        assert_eq!(
            ClassAffinity.choose(&fleet, &idle, small, 1, 0.0, &costs),
            Some(1),
            "small -> Tile-4"
        );
    }

    #[test]
    fn affinity_waits_for_busy_preferred_silicon_when_waiting_is_cheaper() {
        let (mut fleet, costs, big, _) = fixture();
        // Tile-64 busy for 2 ms; waiting (2 ms + 1 ms service) beats the
        // 8 ms the batch would cost on an idle Tile-4 shard.
        fleet.dispatch(0, 0.0, 0.002, 1);
        let idle = fleet.idle_shards(0.0);
        assert_eq!(idle, vec![1, 2]);
        assert_eq!(ClassAffinity.choose(&fleet, &idle, big, 1, 0.0, &costs), None, "hold");
        // ... but a 10 ms horizon flips the comparison: overflow to the
        // cheapest idle shard.
        let (mut fleet, costs, big, _) = fixture();
        fleet.dispatch(0, 0.0, 0.010, 1);
        let idle = fleet.idle_shards(0.0);
        assert_eq!(ClassAffinity.choose(&fleet, &idle, big, 1, 0.0, &costs), Some(1));
    }

    #[test]
    fn cost_aware_minimises_the_memoised_service_time() {
        let (mut fleet, costs, big, small) = fixture();
        let idle = fleet.idle_shards(0.0);
        assert_eq!(
            CostAware.choose(&fleet, &idle, big, 1, 0.0, &costs),
            Some(0),
            "8x cheaper on Tile-64"
        );
        // Small requests: 40k cycles at 1 GHz on either silicon — Tile-64
        // still wins (40k vs 50k cycles); make it busy and the Tile-4
        // shards take over.
        fleet.dispatch(0, 0.0, 5.0, 1);
        let idle = fleet.idle_shards(0.0);
        assert_eq!(CostAware.choose(&fleet, &idle, small, 1, 0.0, &costs), Some(1));
    }

    #[test]
    fn kinds_parse_and_name_round_trip() {
        for kind in DispatchKind::ALL {
            assert_eq!(DispatchKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(DispatchKind::parse("AFFINITY"), Some(DispatchKind::ClassAffinity));
        assert_eq!(DispatchKind::parse("round-robin"), None);
        assert_eq!(DispatchKind::LeastLoaded.name(), "least-loaded");
        assert_eq!(DispatchKind::CostAware.name(), "cost");
    }
}
