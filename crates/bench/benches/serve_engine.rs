//! Criterion benchmark of the parallel-in-time serving engine: one large
//! closed-loop scenario replayed serially, as epoch fragments, and as
//! lane decompositions at increasing lane counts. The serial and epoch
//! rows measure the same scenario (their outcomes are byte-identical by
//! the engine's determinism contract), so their ratio is pure engine
//! overhead; the lane rows measure the decomposed scenario that the
//! `serve` binary's `--speedup` demo scales across cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neura_chip::config::ChipConfig;
use neura_serve::{
    simulate_config_parallel, ClassCost, ClosedLoopSpec, CostTable, DispatchKind, EnginePlan,
    Policy, RequestClass, ServeConfig, ShardGroup, Workload,
};

fn costs() -> CostTable {
    let mut table = CostTable::new();
    let fp = table.register(&ChipConfig::tile_16());
    for dataset in 0..2usize {
        for shrink in [1usize, 2] {
            let cycles = 2_000_000 * (dataset as u64 + 1) / shrink as u64;
            table.insert(
                &fp,
                RequestClass { dataset, shrink },
                ClassCost { cycles, flops: cycles },
            );
        }
    }
    table
}

fn bench_serve_engine(c: &mut Criterion) {
    let costs = costs();
    let fleet = vec![ShardGroup::new("t16", ChipConfig::tile_16(), 8)];
    let cfg = ServeConfig::new(Policy::Fifo, &fleet, DispatchKind::LeastLoaded, &costs);
    let workload = Workload::Closed(ClosedLoopSpec {
        clients: 4_096,
        think_s: 0.001,
        duration_s: 0.5,
        mix_size: 2,
        shrinks: vec![1, 2],
        seed: 0x5EED,
    });

    let mut group = c.benchmark_group("serve_engine");
    group.sample_size(10);
    let plans = [
        ("serial", EnginePlan::serial()),
        ("epochs8", EnginePlan::serial().with_epochs(8)),
        ("lanes2", EnginePlan::serial().with_lanes(2)),
        ("lanes4", EnginePlan::serial().with_lanes(4)),
        ("lanes8", EnginePlan::serial().with_lanes(8)),
    ];
    for (name, plan) in &plans {
        group.bench_with_input(BenchmarkId::from_parameter(name), plan, |b, plan| {
            b.iter(|| simulate_config_parallel(&workload, &cfg, plan).requests());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve_engine);
criterion_main!(benches);
