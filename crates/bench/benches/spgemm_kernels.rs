//! Criterion benchmarks of the reference SpGEMM dataflows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neura_sparse::gen::GraphGenerator;
use neura_sparse::spgemm::{self, Dataflow};

fn bench_spgemm(c: &mut Criterion) {
    let a = GraphGenerator::power_law(1_000, 8_000, 2.1, 7).generate().to_csr();
    let mut group = c.benchmark_group("spgemm_kernels");
    group.sample_size(10);
    for dataflow in [
        Dataflow::RowWise,
        Dataflow::InnerProduct,
        Dataflow::OuterProduct,
        Dataflow::TiledRowWise(4),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(dataflow.name()), &dataflow, |b, df| {
            b.iter(|| spgemm::multiply(&a, &a, *df).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spgemm);
criterion_main!(benches);
