//! Criterion benchmark of the NeuraMem hash-engine accumulation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neura_chip::config::{ChipConfig, EvictionPolicy};
use neura_chip::isa::HaccInstruction;
use neura_chip::neuramem::NeuraMem;
use neura_sim::Cycle;

fn bench_hash_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_engine");
    group.sample_size(20);
    for (name, policy) in
        [("rolling", EvictionPolicy::Rolling), ("barrier", EvictionPolicy::Barrier)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter(|| {
                let mut mem = NeuraMem::new(0, ChipConfig::tile_16().mem, policy);
                let mut cycle = 0u64;
                for tag in 0..4_000u64 {
                    while !mem.accept(HaccInstruction::new(tag % 1_024, 1.0, 4)) {
                        mem.tick(Cycle(cycle));
                        cycle += 1;
                    }
                    mem.tick(Cycle(cycle));
                    cycle += 1;
                }
                mem.flush(Cycle(cycle));
                mem.drain_evicted().len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hash_engine);
criterion_main!(benches);
