//! Criterion benchmark of the compute-mapping algorithms (lookup cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neura_chip::mapping::MappingKind;

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_lookup");
    group.sample_size(20);
    for kind in MappingKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, kind| {
            b.iter(|| {
                let mut mapper = kind.build(128, 7);
                let mut acc = 0usize;
                for row in 0..64u64 {
                    for tag in 0..256u64 {
                        acc += mapper.map(row * 10_000 + tag * 16, row);
                    }
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
