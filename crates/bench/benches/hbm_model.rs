//! Criterion benchmark of the HBM channel / memory-controller model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neura_mem::{HbmTiming, MemoryController, MemoryRequest};
use neura_sim::Cycle;

fn bench_hbm(c: &mut Criterion) {
    let mut group = c.benchmark_group("hbm_model");
    group.sample_size(20);
    for (name, stride) in [("streaming", 64u64), ("random", 8_192u64)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &stride, |b, &stride| {
            b.iter(|| {
                let mut ctrl = MemoryController::new(0, HbmTiming::hbm2(), 256);
                let mut done = Vec::new();
                let mut submitted = 0u64;
                let mut cycle = 0u64;
                while done.len() < 2_000 {
                    if submitted < 2_000
                        && ctrl
                            .submit(MemoryRequest::read(submitted * stride, 64), Cycle(cycle))
                            .is_some()
                    {
                        submitted += 1;
                    }
                    ctrl.tick(Cycle(cycle), &mut done);
                    cycle += 1;
                }
                cycle
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hbm);
criterion_main!(benches);
