//! Criterion benchmark of an end-to-end SpGEMM run on the cycle-level
//! accelerator model (small Cora-like analog, Tile-4 vs Tile-16).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::{ChipConfig, TileSize};
use neura_sparse::gen::GraphGenerator;

fn bench_accelerator(c: &mut Criterion) {
    let a = GraphGenerator::power_law(128, 900, 2.1, 5).generate().to_csr();
    let mut group = c.benchmark_group("accelerator_e2e");
    group.sample_size(10);
    for tile in [TileSize::Tile4, TileSize::Tile16] {
        group.bench_with_input(BenchmarkId::from_parameter(tile.name()), &tile, |b, &tile| {
            b.iter(|| {
                let mut chip = Accelerator::new(ChipConfig::for_tile_size(tile));
                chip.run_spgemm(&a, &a).expect("simulation drains").report.total_cycles
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accelerator);
criterion_main!(benches);
