//! Smoke tests proving every paper figure/table binary runs to completion
//! and emits a parseable machine-readable artifact.
//!
//! Each binary is executed as a real subprocess (the exact artifact `cargo
//! run` would launch) with [`neura_bench::SCALE_MULT_ENV`] set so the
//! workloads shrink to seconds even in debug builds. All thirteen binaries
//! run concurrently on the same `neura_lab::Runner` scoped-thread pool the
//! binaries themselves use for their sweeps. Beyond exit status 0 and
//! non-empty stdout, each binary's `--json` output must parse back through
//! `neura_lab`'s artifact parser with at least one record and at least one
//! metric per record — the numeric content at smoke scale is not
//! meaningful, but the *schema* contract is enforced here; correctness of
//! the underlying models is covered by the unit and property tests.

use std::path::Path;
use std::process::Command;

use neura_lab::{parse_json, Artifact, Runner};

/// Extra down-scaling applied on top of each binary's own scale factor.
const SMOKE_MULT: &str = "32";

/// Every artifact binary, paired with the path Cargo built it at.
const BINARIES: [(&str, &str); 13] = [
    ("table1", env!("CARGO_BIN_EXE_table1")),
    ("table3", env!("CARGO_BIN_EXE_table3")),
    ("table4", env!("CARGO_BIN_EXE_table4")),
    ("table5", env!("CARGO_BIN_EXE_table5")),
    ("fig11", env!("CARGO_BIN_EXE_fig11")),
    ("fig13", env!("CARGO_BIN_EXE_fig13")),
    ("fig14", env!("CARGO_BIN_EXE_fig14")),
    ("fig15", env!("CARGO_BIN_EXE_fig15")),
    ("fig16", env!("CARGO_BIN_EXE_fig16")),
    ("fig17", env!("CARGO_BIN_EXE_fig17")),
    ("ablation", env!("CARGO_BIN_EXE_ablation")),
    ("tune", env!("CARGO_BIN_EXE_tune")),
    ("serve", env!("CARGO_BIN_EXE_serve")),
];

fn run_smoke(name: &str, exe: &str, json_dir: &Path) -> Result<(), String> {
    let json_path = json_dir.join(format!("{name}.json"));
    let mut command = Command::new(exe);
    command.arg("--json").arg(&json_path).env(neura_bench::SCALE_MULT_ENV, SMOKE_MULT);
    if name == "tune" {
        // Tuning all twenty datasets is a `just tune` job, not a smoke test;
        // one dataset proves the binary and its artifact schema end to end.
        command.args(["--dataset", "cora"]);
    }
    let output = command.output().map_err(|e| format!("failed to spawn ({exe}): {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "exited with {:?}\nstderr:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    if output.stdout.is_empty() {
        return Err("produced no output on stdout".to_string());
    }

    let text = std::fs::read_to_string(&json_path)
        .map_err(|e| format!("did not write {}: {e}", json_path.display()))?;
    let artifact = Artifact::from_json(
        &parse_json(&text).map_err(|e| format!("artifact does not parse: {e}"))?,
    )
    .map_err(|e| format!("artifact schema mismatch: {e}"))?;
    if artifact.bin != name {
        return Err(format!("artifact names bin {:?}, expected {name:?}", artifact.bin));
    }
    if artifact.scale_mult.to_string() != SMOKE_MULT {
        return Err(format!("artifact records scale_mult {}", artifact.scale_mult));
    }
    if artifact.records.is_empty() {
        return Err("artifact has no records".to_string());
    }
    for record in &artifact.records {
        if record.metrics.is_empty() {
            return Err(format!("record {:?} has no metrics", record.id));
        }
    }
    if name == "tune" {
        let best = artifact
            .records
            .iter()
            .find(|r| r.id.ends_with("/best_config"))
            .ok_or("tuner artifact has no best_config record")?;
        if best.metric_value("objective_score").is_none() {
            return Err("best_config record lacks an objective_score metric".to_string());
        }
        if best.metric_value("improvement_vs_default").unwrap_or(0.0) < 1.0 {
            return Err("best_config is worse than the paper default".to_string());
        }
    }
    if name == "serve" {
        check_serve_artifact(&artifact)?;
    }
    Ok(())
}

/// Serving-specific schema checks: every scenario summary carries tail
/// latency and throughput, and at a fixed arrival rate more shards never
/// worsen p99 latency (the binary's default sweep includes FIFO at 1/2/4
/// shards over one shared stream).
fn check_serve_artifact(artifact: &Artifact) -> Result<(), String> {
    let summaries: Vec<_> =
        artifact.records.iter().filter(|r| r.id.ends_with("/summary")).collect();
    if summaries.is_empty() {
        return Err("serve artifact has no scenario summaries".to_string());
    }
    for summary in &summaries {
        for metric in ["p99_latency_ms", "throughput_rps", "queue_depth_mean"] {
            if summary.metric_value(metric).is_none() {
                return Err(format!("summary {:?} lacks the {metric} metric", summary.id));
            }
        }
    }
    if !artifact.records.iter().any(|r| r.id.contains("/shard")) {
        return Err("serve artifact has no per-shard utilisation records".to_string());
    }
    // The default arrival rate is auto-calibrated, so match the fifo
    // summaries by prefix and suffix instead of the exact rps segment.
    let fifo_p99 = |shards: usize| {
        let suffix = format!("/fifo/s{shards}/summary");
        artifact
            .records
            .iter()
            .find(|r| r.id.starts_with("serve/poisson/rps") && r.id.ends_with(&suffix))
            .and_then(|r| r.metric_value("p99_latency_ms"))
            .ok_or(format!("missing default fifo s{shards} summary"))
    };
    let (s1, s2, s4) = (fifo_p99(1)?, fifo_p99(2)?, fifo_p99(4)?);
    if s2 > s1 + 1e-9 || s4 > s2 + 1e-9 {
        return Err(format!("p99 worsened with more shards: s1={s1} s2={s2} s4={s4}"));
    }
    Ok(())
}

/// All thirteen binaries, in parallel, through the lab runner.
#[test]
fn all_binaries_run_and_emit_parseable_artifacts() {
    let json_dir = std::env::temp_dir().join(format!("neura_bench_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&json_dir).expect("create smoke artifact dir");

    let results = Runner::from_env()
        .run(&BINARIES, |_, (name, exe)| run_smoke(name, exe, &json_dir).map_err(|e| (*name, e)));

    std::fs::remove_dir_all(&json_dir).ok();

    let failures: Vec<String> = results
        .into_iter()
        .filter_map(Result::err)
        .map(|(name, error)| format!("{name}: {error}"))
        .collect();
    assert!(
        failures.is_empty(),
        "{} binary smoke failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The serve artifact is byte-identical across `NEURA_LAB_THREADS`
/// settings, and the `trend` binary reports zero delta (exit 0 with
/// `--fail-above 0`) when diffing an artifact against itself.
#[test]
fn serve_is_thread_invariant_and_trend_self_diff_is_zero() {
    let json_dir =
        std::env::temp_dir().join(format!("neura_bench_serve_trend_{}", std::process::id()));
    std::fs::create_dir_all(&json_dir).expect("create artifact dir");

    let serve_with_threads = |threads: &str| {
        let path = json_dir.join(format!("serve_t{threads}.json"));
        let output = Command::new(env!("CARGO_BIN_EXE_serve"))
            .arg("--json")
            .arg(&path)
            .env(neura_bench::SCALE_MULT_ENV, SMOKE_MULT)
            .env("NEURA_LAB_THREADS", threads)
            .output()
            .expect("spawn serve");
        assert!(
            output.status.success(),
            "serve (threads={threads}) failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        (path.clone(), std::fs::read_to_string(&path).expect("serve artifact written"))
    };
    let (path_two, bytes_two) = serve_with_threads("2");
    let (_, bytes_eight) = serve_with_threads("8");
    assert_eq!(bytes_two, bytes_eight, "serve artifact bytes depend on the thread count");

    let trend = Command::new(env!("CARGO_BIN_EXE_trend"))
        .args(["--fail-above", "0"])
        .arg(&path_two)
        .arg(&path_two)
        .output()
        .expect("spawn trend");
    let stdout = String::from_utf8_lossy(&trend.stdout);
    assert!(
        trend.status.success(),
        "trend self-diff must report zero delta:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&trend.stderr)
    );
    assert!(stdout.contains("all identical"), "unexpected trend output:\n{stdout}");

    std::fs::remove_dir_all(&json_dir).ok();
}
