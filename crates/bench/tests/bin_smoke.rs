//! Smoke tests proving every paper figure/table binary runs to completion
//! and emits a parseable machine-readable artifact.
//!
//! Each binary is executed as a real subprocess (the exact artifact `cargo
//! run` would launch) with [`neura_bench::SCALE_MULT_ENV`] set so the
//! workloads shrink to seconds even in debug builds. All seventeen
//! invocations (fifteen binaries plus a serve-p99 tuner run and an
//! analytic-cost serve run) execute
//! concurrently on the same `neura_lab::Runner` scoped-thread pool the
//! binaries themselves use for their sweeps. Beyond exit status 0 and
//! non-empty stdout, each binary's `--json` output must parse back through
//! `neura_lab`'s artifact parser with at least one record and at least one
//! metric per record — the numeric content at smoke scale is not
//! meaningful, but the *schema* contract is enforced here; correctness of
//! the underlying models is covered by the unit and property tests.

use std::path::Path;
use std::process::Command;

use neura_lab::{parse_json, Artifact, RunRecord, Runner};

/// Extra down-scaling applied on top of each binary's own scale factor.
const SMOKE_MULT: &str = "32";

/// Every smoke invocation: a unique label (also the artifact file stem),
/// the binary path, the artifact's `bin` name and extra arguments.
const INVOCATIONS: [(&str, &str, &str, &[&str]); 17] = [
    ("table1", env!("CARGO_BIN_EXE_table1"), "table1", &[]),
    ("table3", env!("CARGO_BIN_EXE_table3"), "table3", &[]),
    ("table4", env!("CARGO_BIN_EXE_table4"), "table4", &[]),
    ("table5", env!("CARGO_BIN_EXE_table5"), "table5", &[]),
    ("fig11", env!("CARGO_BIN_EXE_fig11"), "fig11", &[]),
    ("fig13", env!("CARGO_BIN_EXE_fig13"), "fig13", &[]),
    ("fig14", env!("CARGO_BIN_EXE_fig14"), "fig14", &[]),
    ("fig15", env!("CARGO_BIN_EXE_fig15"), "fig15", &[]),
    ("fig16", env!("CARGO_BIN_EXE_fig16"), "fig16", &[]),
    ("fig17", env!("CARGO_BIN_EXE_fig17"), "fig17", &[]),
    ("ablation", env!("CARGO_BIN_EXE_ablation"), "ablation", &[]),
    // Tuning all twenty datasets is a `just tune` job, not a smoke test;
    // one dataset proves the binary and its artifact schema end to end.
    ("tune", env!("CARGO_BIN_EXE_tune"), "tune", &["--dataset", "cora"]),
    // The serve-aware objective: p99-under-load scoring through the
    // serving layer, budget-truncated so the smoke run stays cheap.
    (
        "tune-serve-p99",
        env!("CARGO_BIN_EXE_tune"),
        "tune",
        &["--dataset", "cora", "--objective", "serve-p99", "--budget", "40"],
    ),
    ("serve", env!("CARGO_BIN_EXE_serve"), "serve", &[]),
    // The analytic fast path through the serving layer: same scenarios,
    // classes priced by the closed-form model instead of cycle sims.
    ("serve-analytic", env!("CARGO_BIN_EXE_serve"), "serve", &["--cost-model", "analytic"]),
    // Cross-validation harness: two datasets prove the sampling loop and
    // the error-report schema (numeric accuracy is a paper-scale claim,
    // checked by the `xval` golden / `just xval-paper`, not at 32 nodes).
    (
        "xval",
        env!("CARGO_BIN_EXE_xval"),
        "xval",
        &["--dataset", "facebook", "--dataset", "wiki-Vote"],
    ),
    // Chip profiler sweep: two datasets prove the windowed-attribution
    // loop and the profile artifact schema end to end (the full grid is
    // a `just profile` job; conservation is enforced even at smoke scale
    // via the flag).
    (
        "profile",
        env!("CARGO_BIN_EXE_profile"),
        "profile",
        &["--dataset", "cora", "--dataset", "facebook", "--require-conservation"],
    ),
];

fn run_smoke(
    label: &str,
    exe: &str,
    bin: &str,
    extra_args: &[&str],
    json_dir: &Path,
) -> Result<(), String> {
    let json_path = json_dir.join(format!("{label}.json"));
    let mut command = Command::new(exe);
    command.arg("--json").arg(&json_path).env(neura_bench::SCALE_MULT_ENV, SMOKE_MULT);
    command.args(extra_args);
    let output = command.output().map_err(|e| format!("failed to spawn ({exe}): {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "exited with {:?}\nstderr:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    if output.stdout.is_empty() {
        return Err("produced no output on stdout".to_string());
    }

    let text = std::fs::read_to_string(&json_path)
        .map_err(|e| format!("did not write {}: {e}", json_path.display()))?;
    let artifact = Artifact::from_json(
        &parse_json(&text).map_err(|e| format!("artifact does not parse: {e}"))?,
    )
    .map_err(|e| format!("artifact schema mismatch: {e}"))?;
    if artifact.bin != bin {
        return Err(format!("artifact names bin {:?}, expected {bin:?}", artifact.bin));
    }
    if artifact.scale_mult.to_string() != SMOKE_MULT {
        return Err(format!("artifact records scale_mult {}", artifact.scale_mult));
    }
    if artifact.records.is_empty() {
        return Err("artifact has no records".to_string());
    }
    for record in &artifact.records {
        if record.metrics.is_empty() {
            return Err(format!("record {:?} has no metrics", record.id));
        }
    }
    if bin == "tune" {
        let best = artifact
            .records
            .iter()
            .find(|r| r.id.ends_with("/best_config"))
            .ok_or("tuner artifact has no best_config record")?;
        if best.metric_value("objective_score").is_none() {
            return Err("best_config record lacks an objective_score metric".to_string());
        }
        if best.metric_value("improvement_vs_default").unwrap_or(0.0) < 1.0 {
            return Err("best_config is worse than the paper default".to_string());
        }
    }
    if label == "serve" {
        check_serve_artifact(&artifact)?;
    }
    if bin == "xval" {
        let summary = artifact
            .records
            .iter()
            .find(|r| r.id == "xval/summary")
            .ok_or("xval artifact has no overall summary record")?;
        for metric in [
            "mean_abs_rel_error_pct",
            "worst_abs_rel_error_pct",
            "mean_bound_pct",
            "worst_bound_pct",
            "cells",
        ] {
            let value = summary
                .metric_value(metric)
                .ok_or(format!("xval summary lacks the {metric} metric"))?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!("xval summary metric {metric} is not a sane value: {value}"));
            }
        }
        if !artifact.records.iter().any(|r| r.metric_value("rel_error_pct").is_some()) {
            return Err("xval artifact has no per-cell error records".to_string());
        }
    }
    Ok(())
}

/// A `<prefix>...<suffix>` summary record's metric, by ID shape (the
/// auto-calibrated rps segment in the middle is scale-dependent).
fn summary_metric(
    artifact: &Artifact,
    prefix: &str,
    suffix: &str,
    metric: &str,
) -> Result<f64, String> {
    summary_record(artifact, prefix, suffix)?
        .metric_value(metric)
        .ok_or(format!("summary {prefix}...{suffix} lacks the {metric} metric"))
}

fn summary_record<'a>(
    artifact: &'a Artifact,
    prefix: &str,
    suffix: &str,
) -> Result<&'a RunRecord, String> {
    artifact
        .records
        .iter()
        .find(|r| r.id.starts_with(prefix) && r.id.ends_with(suffix))
        .ok_or(format!("missing summary {prefix}...{suffix}"))
}

/// Serving-specific schema checks: every scenario summary carries tail
/// latency, throughput and capacity cost; more shards never worsen FIFO
/// p99 on one shared stream; the default comparison arms — heterogeneous
/// Tile-64+Tile-4 fleet with per-group records, a closed-loop twin of an
/// open-loop arm, and an autoscaled arm reporting shard-seconds — are all
/// present in the one artifact.
fn check_serve_artifact(artifact: &Artifact) -> Result<(), String> {
    let summaries: Vec<_> =
        artifact.records.iter().filter(|r| r.id.ends_with("/summary")).collect();
    if summaries.is_empty() {
        return Err("serve artifact has no scenario summaries".to_string());
    }
    for summary in &summaries {
        for metric in ["p99_latency_ms", "throughput_rps", "queue_depth_mean", "shard_seconds"] {
            if summary.metric_value(metric).is_none() {
                return Err(format!("summary {:?} lacks the {metric} metric", summary.id));
            }
        }
    }
    if !artifact.records.iter().any(|r| r.id.contains("/shard")) {
        return Err("serve artifact has no per-shard utilisation records".to_string());
    }

    // Shard scaling: the default arrival rate is auto-calibrated, so match
    // the fifo summaries by prefix and suffix instead of the exact rps.
    let fifo_p99 = |shards: usize| {
        summary_metric(
            artifact,
            "serve/poisson/rps",
            &format!("/t16x{shards}/least-loaded/fifo/summary"),
            "p99_latency_ms",
        )
    };
    let (s1, s2, s4) = (fifo_p99(1)?, fifo_p99(2)?, fifo_p99(4)?);
    if s2 > s1 + 1e-9 || s4 > s2 + 1e-9 {
        return Err(format!("p99 worsened with more shards: s1={s1} s2={s2} s4={s4}"));
    }

    // Heterogeneous arm: the mixed fleet's summary carries the cost metric
    // and both groups report utilisation.
    let mixed = "/t64x1+t4x4/affinity/fifo";
    summary_metric(artifact, "serve/poisson/rps", &format!("{mixed}/summary"), "shard_seconds")?;
    for group in ["t64", "t4"] {
        let record = artifact
            .records
            .iter()
            .find(|r| {
                r.id.starts_with("serve/poisson/rps")
                    && r.id.ends_with(&format!("{mixed}/group/{group}"))
            })
            .ok_or(format!("missing per-group record for {group} in the mixed fleet"))?;
        if record.metric_value("utilization").is_none()
            || record.metric_value("shard_seconds").is_none()
        {
            return Err(format!("group record {:?} lacks utilisation/cost metrics", record.id));
        }
    }

    // Closed-loop arm: bounded in-flight, with its open-loop twin (same
    // fleet, dispatch and policy) in the same artifact for comparison.
    let closed = summary_record(artifact, "serve/closed64/", "/t16x2/least-loaded/fifo/summary")?;
    let in_flight =
        closed.metric_value("max_in_flight").ok_or("closed-loop summary lacks max_in_flight")?;
    if in_flight > 64.0 {
        return Err(format!("closed loop exceeded its client count: {in_flight} in flight"));
    }
    summary_record(artifact, "serve/poisson/rps", "/t16x2/least-loaded/fifo/summary")?;

    // Autoscaled arm: p99 and shard-seconds cost side by side.
    let scaled_suffix = "/t16x1/least-loaded/fifo/as1-4/summary";
    for metric in ["p99_latency_ms", "shard_seconds", "scale_events"] {
        summary_metric(artifact, "serve/poisson/rps", scaled_suffix, metric)?;
    }

    check_scenario_arms(artifact)
}

/// Scenario-library checks: every named `scn-*` arm rides along with the
/// default sweep and reports sane shed/crash/recovery numbers — the
/// overload arm sheds hard against its bound while the fault-free plain
/// arms shed nothing, the rate-limited free tier is squeezed to its
/// token bucket, the crash arm recovers no faster than the provisioning
/// delay, and the degraded arm pays a visibly worse tail.
fn check_scenario_arms(artifact: &Artifact) -> Result<(), String> {
    for name in neura_serve::ScenarioSpec::names() {
        let prefix = format!("serve/scn-{name}/");
        let summary = summary_record(artifact, &prefix, "/summary")?;
        for metric in ["offered", "shed", "shed_rate", "crashes", "recoveries"] {
            if summary.metric_value(metric).is_none() {
                return Err(format!("scenario summary {:?} lacks {metric}", summary.id));
            }
        }
        let offered = summary.metric_value("offered").unwrap();
        let served = summary.metric_value("requests").unwrap_or(0.0);
        let shed = summary.metric_value("shed").unwrap();
        let shed_rate = summary.metric_value("shed_rate").unwrap();
        if !(0.0..=1.0).contains(&shed_rate) {
            return Err(format!("scn-{name} shed rate {shed_rate} outside [0, 1]"));
        }
        if served + shed != offered {
            return Err(format!(
                "scn-{name} loses requests: {served} served + {shed} shed != {offered} offered"
            ));
        }
    }

    // The overload arm sheds against its bound; the plain shard-scaling
    // arms (no bound, no faults) shed nothing.
    let overload = summary_record(artifact, "serve/scn-overload/", "/summary")?;
    if overload.metric_value("shed_rate").unwrap_or(0.0) <= 0.1 {
        return Err("the 3x overload arm barely shed".to_string());
    }
    let bound = 64.0;
    if overload.metric_value("queue_depth_max").unwrap_or(f64::INFINITY) > bound {
        return Err("the overload arm's backlog escaped its bound".to_string());
    }
    let plain = summary_record(artifact, "serve/poisson/rps", "/t16x4/least-loaded/fifo/summary")?;
    if plain.metric_value("shed").unwrap_or(f64::NAN) != 0.0 {
        return Err("an unbounded plain arm shed requests".to_string());
    }

    // The rate-limited free tier admits a trickle; gold reports its SLO.
    let free = summary_record(artifact, "serve/scn-tenants/", "/tenant/free")?;
    if free.metric_value("shed_rate").unwrap_or(0.0) <= 0.5 {
        return Err("the 1 rps free tier admitted more than its token bucket".to_string());
    }
    let gold = summary_record(artifact, "serve/scn-tenants/", "/tenant/gold")?;
    if gold.metric_value("slo_attainment").is_none() {
        return Err("the gold tenant lacks an slo_attainment metric".to_string());
    }

    // Crashes land, re-dispatch and recover no faster than provisioning.
    let crash = summary_record(artifact, "serve/scn-crash/", "/summary")?;
    if crash.metric_value("crashes").unwrap_or(0.0) < 1.0 {
        return Err("the crash arm injected no crashes".to_string());
    }
    if crash.metric_value("recoveries").unwrap_or(0.0) >= 1.0 {
        let recovery_ms = crash.metric_value("recovery_time_ms").unwrap_or(0.0);
        let delay_ms: f64 = crash
            .params
            .iter()
            .find(|(k, _)| k == "provision_delay_ms")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or("the crash arm lacks a provision_delay_ms param")?;
        if recovery_ms < delay_ms - 1e-9 {
            return Err(format!(
                "crash recovery ({recovery_ms} ms) outpaced the provisioning delay ({delay_ms} ms)"
            ));
        }
    }

    // Degraded silicon pays a worse tail than the same-load crash arm's.
    let degraded = summary_record(artifact, "serve/scn-degraded/", "/summary")?;
    let degraded_p99 = degraded.metric_value("p99_latency_ms").unwrap_or(0.0);
    let crash_p99 = crash.metric_value("p99_latency_ms").unwrap_or(f64::INFINITY);
    if degraded_p99 <= crash_p99 {
        return Err(format!(
            "3x-degraded silicon p99 ({degraded_p99} ms) no worse than healthy ({crash_p99} ms)"
        ));
    }
    Ok(())
}

/// All fourteen invocations, in parallel, through the lab runner.
#[test]
fn all_binaries_run_and_emit_parseable_artifacts() {
    let json_dir = std::env::temp_dir().join(format!("neura_bench_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&json_dir).expect("create smoke artifact dir");

    let results = Runner::from_env().run(&INVOCATIONS, |_, (label, exe, bin, extra_args)| {
        run_smoke(label, exe, bin, extra_args, &json_dir).map_err(|e| (*label, e))
    });

    std::fs::remove_dir_all(&json_dir).ok();

    let failures: Vec<String> = results
        .into_iter()
        .filter_map(Result::err)
        .map(|(label, error)| format!("{label}: {error}"))
        .collect();
    assert!(
        failures.is_empty(),
        "{} binary smoke failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The traced serve run: `--trace` adds a `neura_lab.timeline/v1`
/// artifact that is byte-identical across `NEURA_LAB_THREADS`, leaves the
/// `serve.json` bytes exactly as an untraced run writes them (tracing is
/// pure observation), respects the windowing invariant (every scenario's
/// worst-window p99 at least matches — and on the flash/crash arms
/// strictly exceeds — the run-aggregate p99), recovers no faster than the
/// provisioning delay, and passes the `timeline` binary's checks.
#[test]
fn traced_serve_emits_a_thread_invariant_timeline() {
    let json_dir =
        std::env::temp_dir().join(format!("neura_bench_serve_trace_{}", std::process::id()));
    std::fs::create_dir_all(&json_dir).expect("create artifact dir");

    let serve = |label: &str, threads: &str, trace: Option<&Path>| {
        let path = json_dir.join(format!("serve_{label}.json"));
        let mut command = Command::new(env!("CARGO_BIN_EXE_serve"));
        command
            .arg("--json")
            .arg(&path)
            // Byte-compared across runs: strip the wall-clock meta block,
            // which is the one intentionally non-deterministic part.
            .arg("--no-meta")
            .env(neura_bench::SCALE_MULT_ENV, SMOKE_MULT)
            .env("NEURA_LAB_THREADS", threads);
        if let Some(trace_path) = trace {
            command.arg("--trace").arg(trace_path);
        }
        let output = command.output().expect("spawn serve");
        assert!(
            output.status.success(),
            "serve ({label}) failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        std::fs::read_to_string(&path).expect("serve artifact written")
    };

    let timeline_two = json_dir.join("timeline_t2.json");
    let timeline_eight = json_dir.join("timeline_t8.json");
    let untraced = serve("plain", "2", None);
    let traced_two = serve("t2", "2", Some(&timeline_two));
    let traced_eight = serve("t8", "8", Some(&timeline_eight));
    assert_eq!(untraced, traced_two, "tracing must not perturb the serve artifact");
    assert_eq!(traced_two, traced_eight);
    let timeline_bytes = std::fs::read_to_string(&timeline_two).expect("timeline written");
    assert_eq!(
        timeline_bytes,
        std::fs::read_to_string(&timeline_eight).expect("timeline written"),
        "timeline artifact bytes depend on the thread count"
    );

    let artifact = Artifact::from_json(&parse_json(&timeline_bytes).expect("timeline parses"))
        .expect("timeline follows the artifact schema");
    assert_eq!(artifact.schema, neura_lab::TIMELINE_SCHEMA);
    let summaries: Vec<_> = artifact
        .records
        .iter()
        .filter_map(|r| r.id.strip_suffix("/timeline").map(|scope| (scope, r)))
        .collect();
    assert!(!summaries.is_empty(), "the timeline artifact names no traced scenarios");
    for (scope, record) in &summaries {
        let worst = record.metric_value("worst_window_p99_ms").expect("worst-window p99");
        let aggregate = record.metric_value("aggregate_p99_ms").expect("aggregate p99");
        assert!(
            worst >= aggregate,
            "{scope}: worst-window p99 {worst} ms undercuts the aggregate {aggregate} ms"
        );
        // The dynamic arms are why the timeline exists: the spike the
        // aggregate hides must be strictly visible in the worst window.
        if scope.contains("scn-flash") || scope.contains("scn-crash") {
            assert!(
                worst > aggregate,
                "{scope}: worst-window p99 {worst} ms does not rise above the aggregate"
            );
        }
        if scope.contains("scn-crash") && record.metric_value("recoveries").unwrap_or(0.0) >= 1.0 {
            let recovery_ms = record.metric_value("recovery_time_ms").unwrap_or(0.0);
            let delay_ms: f64 = record
                .params
                .iter()
                .find(|(k, _)| k == "provision_delay_ms")
                .and_then(|(_, v)| v.parse().ok())
                .expect("the crash timeline carries the provisioning delay param");
            assert!(
                recovery_ms >= delay_ms - 1e-9,
                "{scope}: recovery ({recovery_ms} ms) outpaced provisioning ({delay_ms} ms)"
            );
        }
    }
    assert!(
        artifact.records.iter().any(|r| r.id.contains("/window/")),
        "the timeline artifact has no per-window records"
    );

    let timeline = Command::new(env!("CARGO_BIN_EXE_timeline"))
        .arg(&timeline_two)
        .output()
        .expect("spawn timeline");
    let stdout = String::from_utf8_lossy(&timeline.stdout);
    assert!(
        timeline.status.success(),
        "the timeline binary rejected a fresh artifact:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&timeline.stderr)
    );
    assert!(stdout.contains("Timeline:"), "unexpected timeline output:\n{stdout}");
    // Pointing it at the (plain-schema) serve artifact must fail loudly.
    let wrong = Command::new(env!("CARGO_BIN_EXE_timeline"))
        .arg(json_dir.join("serve_plain.json"))
        .output()
        .expect("spawn timeline");
    assert!(!wrong.status.success(), "a plain run artifact is not a timeline");

    std::fs::remove_dir_all(&json_dir).ok();
}

/// The profiled runs: `profile` and `serve --profile` emit
/// `neura_lab.profile/v1` artifacts that are byte-identical across
/// `NEURA_LAB_THREADS`, profiling leaves the `serve.json` bytes exactly
/// as an unprofiled run writes them (the profiler is pure observation on
/// the same memoised simulations), every profile summary conserves its
/// stall taxonomy and cycle split, and `trend` headlines the worst-window
/// stall fraction when diffing profile artifacts.
#[test]
fn profiled_runs_emit_thread_invariant_conserving_profiles() {
    let json_dir = std::env::temp_dir().join(format!("neura_bench_profile_{}", std::process::id()));
    std::fs::create_dir_all(&json_dir).expect("create artifact dir");

    let run = |exe: &str, label: &str, threads: &str, extra: &[&std::ffi::OsStr]| {
        let path = json_dir.join(format!("{label}.json"));
        let mut command = Command::new(exe);
        command
            .arg("--json")
            .arg(&path)
            .args(extra)
            .env(neura_bench::SCALE_MULT_ENV, SMOKE_MULT)
            .env("NEURA_LAB_THREADS", threads);
        let output = command.output().expect("spawn binary");
        assert!(
            output.status.success(),
            "{label} failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        std::fs::read_to_string(&path).expect("run artifact written")
    };
    let dataset: &[&std::ffi::OsStr] =
        &["--dataset".as_ref(), "cora".as_ref(), "--hbm".as_ref(), "hbm2".as_ref()];

    // The standalone sweep binary: byte-identical profiles at 2 vs 8
    // worker threads (the runner collects in input order by contract).
    let profile_exe = env!("CARGO_BIN_EXE_profile");
    let sweep_two = run(profile_exe, "sweep_t2", "2", dataset);
    let sweep_eight = run(profile_exe, "sweep_t8", "8", dataset);
    assert_eq!(sweep_two, sweep_eight, "profile.json bytes depend on the thread count");

    // The serving layer: --profile leaves serve.json untouched and the
    // profile artifact is equally thread-invariant.
    let serve_exe = env!("CARGO_BIN_EXE_serve");
    let profile_two = json_dir.join("serve_profile_t2.json");
    let profile_eight = json_dir.join("serve_profile_t8.json");
    // --no-meta on every byte-compared serve run: the wall-clock meta
    // block is the one intentionally non-deterministic part.
    let unprofiled = run(serve_exe, "serve_plain", "2", &["--no-meta".as_ref()]);
    let profiled_two = run(
        serve_exe,
        "serve_t2",
        "2",
        &["--no-meta".as_ref(), "--profile".as_ref(), profile_two.as_ref()],
    );
    let profiled_eight = run(
        serve_exe,
        "serve_t8",
        "8",
        &["--no-meta".as_ref(), "--profile".as_ref(), profile_eight.as_ref()],
    );
    assert_eq!(unprofiled, profiled_two, "profiling must not perturb the serve artifact");
    assert_eq!(profiled_two, profiled_eight);
    let profile_bytes = std::fs::read_to_string(&profile_two).expect("profile written");
    assert_eq!(
        profile_bytes,
        std::fs::read_to_string(&profile_eight).expect("profile written"),
        "serve-profile artifact bytes depend on the thread count"
    );

    // Both artifacts carry the profile schema and conserve: taxonomy
    // buckets sum to the stall cycles and busy + stall + idle (epilogue
    // included) covers cores × total_cycles, per summary record.
    for bytes in [&sweep_two, &profile_bytes] {
        let artifact = Artifact::from_json(&parse_json(bytes).expect("profile parses"))
            .expect("profile follows the artifact schema");
        assert_eq!(artifact.schema, neura_lab::PROFILE_SCHEMA);
        let summaries: Vec<_> = artifact
            .records
            .iter()
            .filter_map(|r| r.id.strip_suffix("/profile").map(|scope| (scope, r)))
            .collect();
        assert!(!summaries.is_empty(), "the profile artifact names no profiled runs");
        for (scope, record) in &summaries {
            let metric = |name: &str| {
                record.metric_value(name).unwrap_or_else(|| panic!("{scope} lacks {name}"))
            };
            let buckets = metric("stall_operand_fetch")
                + metric("stall_hashpad_full")
                + metric("stall_noc_backpressure")
                + metric("stall_dispatch_starvation");
            assert_eq!(buckets, metric("stall_cycles"), "{scope}: taxonomy does not conserve");
            let split = metric("busy_cycles")
                + metric("stall_cycles")
                + metric("idle_cycles")
                + metric("epilogue_idle_cycles");
            assert_eq!(
                split,
                metric("cores") * metric("total_cycles"),
                "{scope}: cycle split does not conserve"
            );
            assert!(metric("worst_window_stall_frac") <= 1.0, "{scope}: stall frac > 1");
        }
        assert!(
            artifact.records.iter().any(|r| r.id.contains("/window/")),
            "the profile artifact has no per-window records"
        );
    }

    // trend understands the schema: a self-diff headlines the worst-window
    // stall fraction instead of warning about an unknown artifact.
    let trend = Command::new(env!("CARGO_BIN_EXE_trend"))
        .arg(json_dir.join("sweep_t2.json"))
        .arg(json_dir.join("sweep_t8.json"))
        .arg("--fail-above")
        .arg("0")
        .output()
        .expect("spawn trend");
    let stdout = String::from_utf8_lossy(&trend.stdout);
    assert!(
        trend.status.success(),
        "trend rejected identical profile artifacts:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&trend.stderr)
    );
    assert!(
        stdout.contains("worst-window stall fraction"),
        "trend did not headline the stall fraction:\n{stdout}"
    );

    std::fs::remove_dir_all(&json_dir).ok();
}

/// The two-tier cost model must not perturb the default pipeline: a bare
/// `serve` run and an explicit `--cost-model cycle` run write
/// byte-identical artifacts (the analytic tier is strictly opt-in), the
/// analytic run differs only where it should (it records its cost_model
/// param), and the `xval` harness is byte-identical across
/// `NEURA_LAB_THREADS` settings like every other artifact writer.
#[test]
fn cost_model_default_is_byte_identical_and_xval_is_thread_invariant() {
    let json_dir =
        std::env::temp_dir().join(format!("neura_bench_cost_model_{}", std::process::id()));
    std::fs::create_dir_all(&json_dir).expect("create artifact dir");

    let run = |exe: &str, label: &str, threads: &str, extra: &[&str]| {
        let path = json_dir.join(format!("{label}.json"));
        let output = Command::new(exe)
            .arg("--json")
            .arg(&path)
            .args(extra)
            .env(neura_bench::SCALE_MULT_ENV, SMOKE_MULT)
            .env("NEURA_LAB_THREADS", threads)
            .output()
            .expect("spawn binary");
        assert!(
            output.status.success(),
            "{label} failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        std::fs::read_to_string(&path).expect("artifact written")
    };

    // --no-meta on every byte-compared serve run: the wall-clock meta
    // block is the one intentionally non-deterministic part.
    let serve_default = run(env!("CARGO_BIN_EXE_serve"), "serve_default", "2", &["--no-meta"]);
    let serve_cycle = run(
        env!("CARGO_BIN_EXE_serve"),
        "serve_cycle",
        "2",
        &["--no-meta", "--cost-model", "cycle"],
    );
    assert_eq!(
        serve_default, serve_cycle,
        "an explicit --cost-model cycle run must be byte-identical to the default"
    );
    let serve_analytic = run(
        env!("CARGO_BIN_EXE_serve"),
        "serve_analytic",
        "2",
        &["--no-meta", "--cost-model", "analytic"],
    );
    assert_ne!(
        serve_default, serve_analytic,
        "the analytic run must at least record its cost_model param"
    );
    assert!(
        serve_analytic.contains("cost_model"),
        "the analytic artifact must carry a cost_model param"
    );

    let xval_args = ["--dataset", "facebook", "--tile", "t4", "--hbm", "hbm2"];
    let xval_two = run(env!("CARGO_BIN_EXE_xval"), "xval_t2", "2", &xval_args);
    let xval_eight = run(env!("CARGO_BIN_EXE_xval"), "xval_t8", "8", &xval_args);
    assert_eq!(xval_two, xval_eight, "xval artifact bytes depend on the thread count");

    std::fs::remove_dir_all(&json_dir).ok();
}

/// The serve artifact is byte-identical across `NEURA_LAB_THREADS`
/// settings; the `trend` binary reports zero delta (exit 0 with
/// `--fail-above 0`) when diffing an artifact against itself, and its
/// directory mode counts files present on only one side in the summary
/// line.
#[test]
fn serve_is_thread_invariant_and_trend_diffs_directories() {
    let json_dir =
        std::env::temp_dir().join(format!("neura_bench_serve_trend_{}", std::process::id()));
    std::fs::create_dir_all(&json_dir).expect("create artifact dir");

    let serve_with_threads = |threads: &str| {
        let path = json_dir.join(format!("serve_t{threads}.json"));
        let output = Command::new(env!("CARGO_BIN_EXE_serve"))
            .arg("--json")
            .arg(&path)
            // Byte-compared across thread counts: strip the wall-clock
            // meta block, the one intentionally non-deterministic part.
            .arg("--no-meta")
            .env(neura_bench::SCALE_MULT_ENV, SMOKE_MULT)
            .env("NEURA_LAB_THREADS", threads)
            .output()
            .expect("spawn serve");
        assert!(
            output.status.success(),
            "serve (threads={threads}) failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        (path.clone(), std::fs::read_to_string(&path).expect("serve artifact written"))
    };
    let (path_two, bytes_two) = serve_with_threads("2");
    let (_, bytes_eight) = serve_with_threads("8");
    assert_eq!(bytes_two, bytes_eight, "serve artifact bytes depend on the thread count");

    let trend = Command::new(env!("CARGO_BIN_EXE_trend"))
        .args(["--fail-above", "0"])
        .arg(&path_two)
        .arg(&path_two)
        .output()
        .expect("spawn trend");
    let stdout = String::from_utf8_lossy(&trend.stdout);
    assert!(
        trend.status.success(),
        "trend self-diff must report zero delta:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&trend.stderr)
    );
    assert!(stdout.contains("all identical"), "unexpected trend output:\n{stdout}");

    // Directory mode: one matched pair plus one file present only in
    // BEFORE must be counted in the summary line and trip the threshold.
    let before_dir = json_dir.join("before");
    let after_dir = json_dir.join("after");
    std::fs::create_dir_all(&before_dir).unwrap();
    std::fs::create_dir_all(&after_dir).unwrap();
    std::fs::write(before_dir.join("serve.json"), &bytes_two).unwrap();
    std::fs::write(after_dir.join("serve.json"), &bytes_two).unwrap();
    std::fs::write(before_dir.join("extra.json"), &bytes_two).unwrap();
    let trend_dirs = Command::new(env!("CARGO_BIN_EXE_trend"))
        .args(["--fail-above", "0"])
        .arg(&before_dir)
        .arg(&after_dir)
        .output()
        .expect("spawn trend on directories");
    let stdout = String::from_utf8_lossy(&trend_dirs.stdout);
    assert!(!trend_dirs.status.success(), "a file on one side must trip --fail-above 0:\n{stdout}");
    assert!(stdout.contains("extra.json (before only)"), "the one-sided file is named:\n{stdout}");
    assert!(
        stdout.contains(
            "trend summary: 1 file pair(s) compared, 0 changed metric(s), \
             0 metric(s) on one side only, 1 file(s) on one side only"
        ),
        "directory summary line counts pairs, changed metrics and one-sided files:\n{stdout}"
    );

    std::fs::remove_dir_all(&json_dir).ok();
}
