//! Smoke tests proving every paper figure/table binary runs to completion.
//!
//! Each binary is executed as a real subprocess (the exact artifact `cargo
//! run` would launch) with [`neura_bench::SCALE_MULT_ENV`] set so the
//! workloads shrink to seconds even in debug builds.  The assertions are
//! deliberately weak — exit status 0 and non-empty stdout — because the
//! numeric content at smoke scale is not meaningful; correctness of the
//! underlying models is covered by the unit and property tests.

use std::process::Command;

/// Extra down-scaling applied on top of each binary's own scale factor.
const SMOKE_MULT: &str = "32";

fn run_smoke(name: &str, exe: &str) {
    let output = Command::new(exe)
        .env(neura_bench::SCALE_MULT_ENV, SMOKE_MULT)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {name} ({exe}): {e}"));
    assert!(
        output.status.success(),
        "{name} exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(!output.stdout.is_empty(), "{name} produced no output on stdout");
}

macro_rules! bin_smoke_tests {
    ($($name:ident),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                run_smoke(stringify!($name), env!(concat!("CARGO_BIN_EXE_", stringify!($name))));
            }
        )+
    };
}

bin_smoke_tests! {
    table1, table3, table4, table5,
    fig11, fig13, fig14, fig15, fig16, fig17,
    ablation,
}
