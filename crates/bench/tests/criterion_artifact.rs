//! Criterion-through-lab: measurements taken by the vendored criterion
//! shim must flow into the same machine-readable artifact format the
//! figure/table binaries emit, so micro- and macro-benchmark results can be
//! diffed by the same tooling (`trend`). This test drives the shim's
//! measurement + emission path in-process and round-trips the resulting
//! file through `neura_lab`'s strict artifact parser.
//!
//! Everything lives in a single `#[test]` because the opt-in is a
//! process-wide environment variable; parallel test threads mutating it
//! would race.

use criterion::{BenchmarkId, Criterion};
use neura_lab::{parse_json, Artifact};

#[test]
fn criterion_measurements_round_trip_through_the_lab_artifact_parser() {
    let dir = std::env::temp_dir().join(format!("neura_criterion_json_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    std::env::set_var(criterion::JSON_ENV, &dir);

    let mut criterion = Criterion::default();
    criterion.bench_function("standalone", |b| b.iter(|| criterion::black_box(1 + 1)));
    let mut group = criterion.benchmark_group("grouped");
    group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
        b.iter(|| criterion::black_box(n * 2))
    });
    group.finish();
    criterion::emit_artifact("unit_demo");

    let path = dir.join("bench_unit_demo.json");
    let text = std::fs::read_to_string(&path).expect("artifact written");
    let artifact =
        Artifact::from_json(&parse_json(&text).expect("artifact parses")).expect("schema matches");

    assert_eq!(artifact.bin, "bench_unit_demo");
    assert_eq!(artifact.scale_mult, 1);
    assert_eq!(artifact.records.len(), 2);
    let standalone = artifact.record("bench_unit_demo/standalone").expect("standalone record");
    assert!(standalone.metric_value("mean_seconds").expect("mean metric") >= 0.0);
    assert_eq!(standalone.metric_value("iterations"), Some(1.0), "smoke mode runs once");
    let grouped = artifact.record("bench_unit_demo/grouped/scaled/4").expect("grouped record");
    assert_eq!(
        grouped.metrics.iter().map(|m| m.name.as_str()).collect::<Vec<_>>(),
        vec!["mean_seconds", "iterations"]
    );
    assert_eq!(
        grouped.metrics[0].unit.as_deref(),
        Some("s"),
        "mean carries its unit through the parser"
    );

    // With the variable unset, measuring and emitting must write nothing.
    std::env::remove_var(criterion::JSON_ENV);
    let mut criterion = Criterion::default();
    criterion.bench_function("unrecorded", |b| b.iter(|| criterion::black_box(0)));
    criterion::emit_artifact("unrecorded_target");
    assert!(
        !dir.join("bench_unrecorded_target.json").exists(),
        "no artifact may appear when {} is unset",
        criterion::JSON_ENV
    );
    assert!(!std::path::Path::new("target/artifacts/bench_unrecorded_target.json").exists());
    std::fs::remove_dir_all(&dir).ok();
}
