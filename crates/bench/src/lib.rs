//! Shared helpers for the benchmark harness binaries.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/` (see `DESIGN.md` for the index).  The helpers here
//! keep those binaries small: scaled dataset generation, simple fixed-width
//! table printing, and the default scale factors used to keep the
//! cycle-level simulations tractable on a laptop.

#![warn(missing_docs)]

use neura_sparse::{CsrMatrix, Dataset};

/// Default down-scaling factor applied to the big SuiteSparse/SNAP analogs
/// when they are fed to the cycle-level simulator.
pub const SIM_SCALE: usize = 512;

/// Default down-scaling factor for analytical-model workloads (cheaper, so a
/// larger fraction of the original size is retained).
pub const MODEL_SCALE: usize = 64;

/// Environment variable multiplying every down-scaling factor used by the
/// figure/table binaries.
///
/// Setting e.g. `NEURA_BENCH_SCALE_MULT=16` shrinks each workload a further
/// 16× (graphs never shrink below 32 nodes), turning every binary into a
/// seconds-long smoke run.  CI uses this to prove the binaries execute end to
/// end without paying full simulation cost; leave it unset for paper-scale
/// results.
pub const SCALE_MULT_ENV: &str = "NEURA_BENCH_SCALE_MULT";

/// The extra down-scaling multiplier from [`SCALE_MULT_ENV`] (1 if unset).
///
/// # Panics
///
/// Panics when the variable is set but not a positive integer: a typo here
/// would otherwise silently run the full paper-scale simulation, which is
/// exactly what the caller was trying to avoid.
pub fn scale_multiplier() -> usize {
    match std::env::var(SCALE_MULT_ENV) {
        Err(_) => 1,
        Ok(raw) => match raw.parse::<usize>() {
            Ok(mult) if mult >= 1 => mult,
            _ => panic!("{SCALE_MULT_ENV}={raw:?} is not a positive integer"),
        },
    }
}

/// Generates the scaled CSR adjacency matrix of a dataset with a fixed seed.
///
/// The effective scale is `scale` times [`scale_multiplier`], so the smoke
/// multiplier applies uniformly to every binary that goes through here.
pub fn scaled_matrix(dataset: &Dataset, scale: usize) -> CsrMatrix {
    let scale = scale.saturating_mul(scale_multiplier());
    dataset.generate_scaled(scale, 0xDA7A + dataset.nodes as u64).to_csr()
}

/// Prints a fixed-width table with a header row and a separator.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use neura_sparse::DatasetCatalog;

    #[test]
    fn scaled_matrix_is_deterministic() {
        let d = DatasetCatalog::by_name("cora").unwrap();
        let a = scaled_matrix(&d, 4);
        let b = scaled_matrix(&d, 4);
        assert_eq!(a.nnz(), b.nnz());
        assert!(a.nnz() > 0);
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }
}
