//! Shared helpers for the benchmark harness binaries.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/` (see `DESIGN.md` for the index). The experiment
//! machinery those binaries run on — declarative sweeps, the parallel
//! runner, table/JSON rendering and golden checks — lives in `neura_lab`;
//! this crate keeps only the dataset scaling glue and re-exports the lab
//! surface the binaries (and older callers) use, so `neura_bench::print_table`
//! et al. keep working.

#![warn(missing_docs)]

use neura_sparse::{CsrMatrix, Dataset};

pub use neura_lab::{fmt, print_table, scale_multiplier, SCALE_MULT_ENV};

/// Default down-scaling factor applied to the big SuiteSparse/SNAP analogs
/// when they are fed to the cycle-level simulator.
pub const SIM_SCALE: usize = 512;

/// Default down-scaling factor for analytical-model workloads (cheaper, so a
/// larger fraction of the original size is retained).
pub const MODEL_SCALE: usize = 64;

/// Generates the scaled CSR adjacency matrix of a dataset with a fixed seed.
///
/// The effective scale is `scale` times [`scale_multiplier`], so the smoke
/// multiplier applies uniformly to every binary that goes through here.
pub fn scaled_matrix(dataset: &Dataset, scale: usize) -> CsrMatrix {
    let scale = scale.saturating_mul(scale_multiplier());
    dataset.generate_scaled(scale, 0xDA7A + dataset.nodes as u64).to_csr()
}

/// Resolves a dataset name through the catalog and generates its scaled CSR
/// adjacency matrix — the common first step of a sweep point that carries
/// only a dataset *name* (see `neura_lab::spec::SweepPoint::dataset`).
///
/// # Panics
///
/// Panics when the name is not in the catalog: sweep grids are declared
/// with string names, so a typo must fail loudly, not silently skip work.
pub fn scaled_matrix_by_name(name: &str, scale: usize) -> CsrMatrix {
    let dataset = neura_sparse::DatasetCatalog::by_name(name)
        .unwrap_or_else(|| panic!("dataset {name:?} is not in the catalog"));
    scaled_matrix(&dataset, scale)
}

/// Generates a dataset's cycle-simulator matrix at a reduced tuning
/// fidelity (see `neura_lab::tune`).
///
/// Full fidelity (`shrink == 1`) targets the node band the cycle-level
/// figure binaries simulate: [`SIM_SCALE`] down-scaling, capped at ~2000
/// nodes like `fig16` and floored at 256 nodes so even the smallest
/// analogs leave the halving ladder room to climb. `shrink` then divides
/// that target, so every rung of a tuner really simulates a smaller graph
/// — down to the generator's 32-node floor, which a large
/// [`scale_multiplier`] (smoke runs) reaches at every shrink level.
pub fn sim_matrix_at_fidelity(name: &str, shrink: usize) -> CsrMatrix {
    let dataset = neura_sparse::DatasetCatalog::by_name(name)
        .unwrap_or_else(|| panic!("dataset {name:?} is not in the catalog"));
    let full_nodes = (dataset.nodes / SIM_SCALE).clamp(256, 2_000);
    let target_nodes = (full_nodes / shrink.max(1)).max(32);
    scaled_matrix(&dataset, (dataset.nodes / target_nodes).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use neura_sparse::DatasetCatalog;

    #[test]
    fn scaled_matrix_is_deterministic() {
        let d = DatasetCatalog::by_name("cora").unwrap();
        let a = scaled_matrix(&d, 4);
        let b = scaled_matrix(&d, 4);
        assert_eq!(a.nnz(), b.nnz());
        assert!(a.nnz() > 0);
    }

    #[test]
    fn by_name_matches_catalog_lookup() {
        let via_name = scaled_matrix_by_name("cora", 4);
        let via_catalog = scaled_matrix(&DatasetCatalog::by_name("cora").unwrap(), 4);
        assert_eq!(via_name.nnz(), via_catalog.nnz());
    }

    #[test]
    #[should_panic(expected = "not in the catalog")]
    fn unknown_dataset_panics() {
        scaled_matrix_by_name("definitely-not-a-dataset", 4);
    }

    #[test]
    fn fidelity_ladder_really_shrinks_when_unscaled() {
        // Guarded like scale_multiplier_defaults_to_one: a smoke multiplier
        // legitimately collapses every fidelity to the 32-node floor.
        if std::env::var(SCALE_MULT_ENV).is_err() {
            let full = sim_matrix_at_fidelity("cora", 1).rows();
            let cheap = sim_matrix_at_fidelity("cora", 8).rows();
            assert!(full > cheap, "shrink 8 must simulate a smaller graph ({full} vs {cheap})");
            assert!(cheap >= 32);
        }
    }

    #[test]
    fn lab_reexports_are_live() {
        // `fmt`/`print_table` moved to `neura_lab::report`; the re-exports
        // must keep the old `neura_bench::fmt` call sites compiling.
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(SCALE_MULT_ENV, neura_lab::SCALE_MULT_ENV);
    }
}
