//! Shared helpers for the benchmark harness binaries.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/` (see `DESIGN.md` for the index). The experiment
//! machinery those binaries run on — declarative sweeps, the parallel
//! runner, table/JSON rendering and golden checks — lives in `neura_lab`;
//! this crate keeps only the dataset scaling glue and re-exports the lab
//! surface the binaries (and older callers) use, so `neura_bench::print_table`
//! et al. keep working.

#![warn(missing_docs)]

use neura_sparse::{CsrMatrix, Dataset};

pub use neura_lab::{fmt, print_table, scale_multiplier, SCALE_MULT_ENV};

/// Default down-scaling factor applied to the big SuiteSparse/SNAP analogs
/// when they are fed to the cycle-level simulator.
pub const SIM_SCALE: usize = 512;

/// Default down-scaling factor for analytical-model workloads (cheaper, so a
/// larger fraction of the original size is retained).
pub const MODEL_SCALE: usize = 64;

/// Generates the scaled CSR adjacency matrix of a dataset with a fixed seed.
///
/// The effective scale is `scale` times [`scale_multiplier`], so the smoke
/// multiplier applies uniformly to every binary that goes through here.
pub fn scaled_matrix(dataset: &Dataset, scale: usize) -> CsrMatrix {
    let scale = scale.saturating_mul(scale_multiplier());
    dataset.generate_scaled(scale, 0xDA7A + dataset.nodes as u64).to_csr()
}

/// Resolves a dataset name through the catalog and generates its scaled CSR
/// adjacency matrix — the common first step of a sweep point that carries
/// only a dataset *name* (see `neura_lab::spec::SweepPoint::dataset`).
///
/// # Panics
///
/// Panics when the name is not in the catalog: sweep grids are declared
/// with string names, so a typo must fail loudly, not silently skip work.
pub fn scaled_matrix_by_name(name: &str, scale: usize) -> CsrMatrix {
    let dataset = neura_sparse::DatasetCatalog::by_name(name)
        .unwrap_or_else(|| panic!("dataset {name:?} is not in the catalog"));
    scaled_matrix(&dataset, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neura_sparse::DatasetCatalog;

    #[test]
    fn scaled_matrix_is_deterministic() {
        let d = DatasetCatalog::by_name("cora").unwrap();
        let a = scaled_matrix(&d, 4);
        let b = scaled_matrix(&d, 4);
        assert_eq!(a.nnz(), b.nnz());
        assert!(a.nnz() > 0);
    }

    #[test]
    fn by_name_matches_catalog_lookup() {
        let via_name = scaled_matrix_by_name("cora", 4);
        let via_catalog = scaled_matrix(&DatasetCatalog::by_name("cora").unwrap(), 4);
        assert_eq!(via_name.nnz(), via_catalog.nnz());
    }

    #[test]
    #[should_panic(expected = "not in the catalog")]
    fn unknown_dataset_panics() {
        scaled_matrix_by_name("definitely-not-a-dataset", 4);
    }

    #[test]
    fn lab_reexports_are_live() {
        // `fmt`/`print_table` moved to `neura_lab::report`; the re-exports
        // must keep the old `neura_bench::fmt` call sites compiling.
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(SCALE_MULT_ENV, neura_lab::SCALE_MULT_ENV);
    }
}
