//! Shared helpers for the benchmark harness binaries.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/` (see `DESIGN.md` for the index).  The helpers here
//! keep those binaries small: scaled dataset generation, simple fixed-width
//! table printing, and the default scale factors used to keep the
//! cycle-level simulations tractable on a laptop.

#![warn(missing_docs)]

use neura_sparse::{CsrMatrix, Dataset};

/// Default down-scaling factor applied to the big SuiteSparse/SNAP analogs
/// when they are fed to the cycle-level simulator.
pub const SIM_SCALE: usize = 512;

/// Default down-scaling factor for analytical-model workloads (cheaper, so a
/// larger fraction of the original size is retained).
pub const MODEL_SCALE: usize = 64;

/// Generates the scaled CSR adjacency matrix of a dataset with a fixed seed.
pub fn scaled_matrix(dataset: &Dataset, scale: usize) -> CsrMatrix {
    dataset.generate_scaled(scale, 0xDA7A + dataset.nodes as u64).to_csr()
}

/// Prints a fixed-width table with a header row and a separator.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> =
        headers.iter().enumerate().map(|(i, h)| format!("{:<width$}", h, width = widths[i])).collect();
    println!("{}", header_line.join("  "));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use neura_sparse::DatasetCatalog;

    #[test]
    fn scaled_matrix_is_deterministic() {
        let d = DatasetCatalog::by_name("cora").unwrap();
        let a = scaled_matrix(&d, 4);
        let b = scaled_matrix(&d, 4);
        assert_eq!(a.nnz(), b.nnz());
        assert!(a.nnz() > 0);
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }
}
