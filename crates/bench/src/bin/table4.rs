//! Table 4 — NeuraChip power and area breakdown per component.
//!
//! Run with `cargo run --release -p neura_bench --bin table4`.

use neura_bench::{fmt, print_table};
use neura_chip::config::TileSize;
use neura_chip::power::table4_reference;

fn main() {
    let mut area_rows = Vec::new();
    let mut power_rows = Vec::new();
    for tile in TileSize::ALL {
        let b = table4_reference(tile);
        area_rows.push(vec![
            tile.name().to_string(),
            fmt(b.neuracore.area_mm2, 2),
            fmt(b.neuramem.area_mm2, 2),
            fmt(b.router.area_mm2, 2),
            fmt(b.memory_controller.area_mm2, 2),
            fmt(b.total_area_mm2(), 2),
        ]);
        power_rows.push(vec![
            tile.name().to_string(),
            fmt(b.neuracore.power_w, 2),
            fmt(b.neuramem.power_w, 2),
            fmt(b.router.power_w, 2),
            fmt(b.memory_controller.power_w, 2),
            fmt(b.total_power_w(), 2),
        ]);
    }
    print_table(
        "Table 4a: Area breakdown (mm^2)",
        &["Config", "NeuraCore", "NeuraMem", "Router", "Mem Controller", "Total"],
        &area_rows,
    );
    print_table(
        "Table 4b: Average power breakdown (W)",
        &["Config", "NeuraCore", "NeuraMem", "Router", "Mem Controller", "Total"],
        &power_rows,
    );
}
