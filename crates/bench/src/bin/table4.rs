//! Table 4 — NeuraChip power and area breakdown per component.
//!
//! Run with `cargo run --release -p neura_bench --bin table4` (add `--json
//! [path]` for a machine-readable artifact).

use neura_bench::{fmt, print_table};
use neura_chip::config::TileSize;
use neura_chip::power::table4_reference;
use neura_lab::golden::slugify;
use neura_lab::{ArtifactSession, RunRecord};

fn main() {
    let mut session = ArtifactSession::from_args("table4", neura_bench::scale_multiplier());

    let mut area_rows = Vec::new();
    let mut power_rows = Vec::new();
    for tile in TileSize::ALL {
        let b = table4_reference(tile);
        area_rows.push(vec![
            tile.name().to_string(),
            fmt(b.neuracore.area_mm2, 2),
            fmt(b.neuramem.area_mm2, 2),
            fmt(b.router.area_mm2, 2),
            fmt(b.memory_controller.area_mm2, 2),
            fmt(b.total_area_mm2(), 2),
        ]);
        power_rows.push(vec![
            tile.name().to_string(),
            fmt(b.neuracore.power_w, 2),
            fmt(b.neuramem.power_w, 2),
            fmt(b.router.power_w, 2),
            fmt(b.memory_controller.power_w, 2),
            fmt(b.total_power_w(), 2),
        ]);
        session.push(
            RunRecord::new(format!("table4/{}", slugify(tile.name())))
                .param("tile", tile.name())
                .unit_metric("neuracore_area_mm2", b.neuracore.area_mm2, "mm^2")
                .unit_metric("neuramem_area_mm2", b.neuramem.area_mm2, "mm^2")
                .unit_metric("router_area_mm2", b.router.area_mm2, "mm^2")
                .unit_metric("mem_controller_area_mm2", b.memory_controller.area_mm2, "mm^2")
                .unit_metric("total_area_mm2", b.total_area_mm2(), "mm^2")
                .unit_metric("neuracore_power_w", b.neuracore.power_w, "W")
                .unit_metric("neuramem_power_w", b.neuramem.power_w, "W")
                .unit_metric("router_power_w", b.router.power_w, "W")
                .unit_metric("mem_controller_power_w", b.memory_controller.power_w, "W")
                .unit_metric("total_power_w", b.total_power_w(), "W"),
        );
    }
    print_table(
        "Table 4a: Area breakdown (mm^2)",
        &["Config", "NeuraCore", "NeuraMem", "Router", "Mem Controller", "Total"],
        &area_rows,
    );
    print_table(
        "Table 4b: Average power breakdown (W)",
        &["Config", "NeuraCore", "NeuraMem", "Router", "Mem Controller", "Total"],
        &power_rows,
    );

    session.finish();
}
