//! Figure 14 — CPI histograms of the MMH1/2/4/8 instruction variants.
//!
//! Runs the same Cora-analog SpGEMM on the Tile-16 configuration with each
//! MMH tile height — a four-point `neura_lab` sweep executed in parallel —
//! and prints the per-instruction cycle-count histogram (percentage of
//! instructions per 25-cycle bin) plus the average. Run with
//! `cargo run --release -p neura_bench --bin fig14` (add `--json [path]`
//! for a machine-readable artifact).

use neura_bench::{fmt, print_table, scaled_matrix_by_name};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::ChipConfig;
use neura_lab::golden::{self, slugify};
use neura_lab::{ArtifactSession, ExperimentSpec, RunRecord, Runner, SweepGrid};

fn main() {
    let scale_mult = neura_bench::scale_multiplier();
    let mut session = ArtifactSession::from_args("fig14", scale_mult);
    let a = scaled_matrix_by_name("cora", 4);

    let spec = ExperimentSpec::new(
        "fig14",
        ChipConfig::tile_16(),
        SweepGrid::new().datasets(["cora"]).mmh_tiles([1, 2, 4, 8]),
    );
    let results = Runner::from_env().run_spec(&spec, |point| {
        let mut chip = Accelerator::new(point.config.clone());
        chip.run_spgemm(&a, &a).expect("simulation drains").report
    });

    let mut rows = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for (point, report) in &results {
        let hist = &report.mmh_cpi_histogram;
        if labels.is_empty() {
            labels = hist.bin_labels();
        }
        let mut row = vec![format!("MMH{}", point.config.mmh_tile), fmt(hist.mean(), 0)];
        row.extend(hist.percentages().iter().map(|p| fmt(*p, 1)));
        rows.push(row);

        let mut record = RunRecord::new(&point.id).with_execution(report);
        for (label, pct) in labels.iter().zip(hist.percentages()) {
            record = record.unit_metric(format!("cpi_bin_{}", slugify(label)), pct, "%");
        }
        record.params = point.params();
        session.push(record);
    }

    let mut headers = vec!["Instruction".to_string(), "Avg CPI".to_string()];
    headers.extend(labels);
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 14: CPI histogram (percentage of MMH instructions per cycle bin)",
        &header_refs,
        &rows,
    );
    println!(
        "\nPaper averages: MMH1 91, MMH2 123, MMH4 295, MMH8 877 cycles — larger tiles\n\
         trade higher per-instruction latency for fewer instructions; MMH4 balances the two."
    );

    let artifact = session.finish();
    golden::check(&artifact, golden::fig14_goldens(), golden::Mode::from_scale_mult(scale_mult))
        .print_and_enforce("Figure 14");
}
