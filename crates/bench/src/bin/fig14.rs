//! Figure 14 — CPI histograms of the MMH1/2/4/8 instruction variants.
//!
//! Runs the same Cora-analog SpGEMM on the Tile-16 configuration with each
//! MMH tile height and prints the per-instruction cycle-count histogram
//! (percentage of instructions per 25-cycle bin) plus the average.
//! Run with `cargo run --release -p neura_bench --bin fig14`.

use neura_bench::{fmt, print_table, scaled_matrix};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::ChipConfig;
use neura_sparse::DatasetCatalog;

fn main() {
    let cora = DatasetCatalog::by_name("cora").expect("cora exists");
    let a = scaled_matrix(&cora, 4);

    let mut rows = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for tile in [1u8, 2, 4, 8] {
        let mut chip = Accelerator::new(ChipConfig::tile_16().with_mmh_tile(tile));
        let run = chip.run_spgemm(&a, &a).expect("simulation drains");
        let hist = &run.report.mmh_cpi_histogram;
        if labels.is_empty() {
            labels = hist.bin_labels();
        }
        let mut row = vec![format!("MMH{tile}"), fmt(hist.mean(), 0)];
        row.extend(hist.percentages().iter().map(|p| fmt(*p, 1)));
        rows.push(row);
    }

    let mut headers = vec!["Instruction".to_string(), "Avg CPI".to_string()];
    headers.extend(labels);
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 14: CPI histogram (percentage of MMH instructions per cycle bin)",
        &header_refs,
        &rows,
    );
    println!(
        "\nPaper averages: MMH1 91, MMH2 123, MMH4 295, MMH8 877 cycles — larger tiles\n\
         trade higher per-instruction latency for fewer instructions; MMH4 balances the two."
    );
}
