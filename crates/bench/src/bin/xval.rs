//! Cross-validation of the two-tier chip model: the closed-form
//! `neura_chip::analytic` fast path against the cycle-accurate simulator.
//!
//! Samples the (dataset × tile size × HBM preset × frequency) space, runs
//! *both* pricing paths on every sample — one full cycle-level simulation
//! and one closed-form estimate — and emits a `neura_lab.artifact/v1`
//! error report: per-sample signed relative error, per-dataset and overall
//! mean/worst absolute relative error. At paper scale the bounds are
//! enforced as a golden: mean absolute relative error ≤ 5% and worst-case
//! ≤ 15% across all sampled cells, or the process exits non-zero. Under
//! `NEURA_BENCH_SCALE_MULT` the run is a smoke check (metrics must exist
//! and be finite; tiny 32-node matrices say nothing about paper-scale
//! accuracy).
//!
//! The default grid covers all twenty Table-1 datasets × all three HBM
//! presets, pairing each dataset with the chip tier sized for it: the
//! suite's smallest third of graphs runs on Tile-4, the middle third on
//! Tile-16 and the largest third on Tile-64 — the pairing a practitioner
//! would deploy, and the regime the analytic model is calibrated for.
//! (Deliberately undersized chips leave that envelope: a Tile-4 HashPad
//! thrashes on community-scale graphs, cycle counts explode super-
//! linearly, and no log-linear surrogate tracks that — pass `--tile` to
//! cross any dataset with any tier and see for yourself.)
//!
//! Run with `cargo run --release -p neura_bench --bin xval` (add `--json
//! [path]` for the machine-readable artifact). Flags:
//!
//! - `--dataset NAME` — restrict to one dataset (repeatable; default: the
//!   whole Table-1 SpGEMM suite, all 20 datasets)
//! - `--tile T` — cross every dataset with this tile size, `t4|t16|t64`
//!   (repeatable; default: pair each dataset with its size-matched tier as
//!   above)
//! - `--hbm P` — restrict to one HBM preset, `hbm2|hbm2-dual|ddr4`
//!   (repeatable; default: all three)
//! - `--frequency GHZ` — clock frequency (repeatable; default: 1, 2 —
//!   cycle counts are frequency-independent, so frequencies add service-
//!   time rows without extra simulations)
//! - `--shrink N` — workload shrink factor (repeatable; default: 1)
//! - `--fit` — instead of validating the checked-in coefficients, refit
//!   them from this run's cycle-level samples and print the Rust
//!   coefficient table for `crates/chip/src/analytic.rs` (weighted least
//!   squares in relative-error space, paper-scale cells up-weighted, the
//!   nnz coefficient clamped non-negative — the monotonicity guarantee).
//!   Fitting defaults to shrinks 1, 2, 4, 8 so the model also covers the
//!   tuner's reduced-fidelity rungs.

use neura_bench::{fmt, print_table, sim_matrix_at_fidelity};
use neura_chip::accelerator::Accelerator;
use neura_chip::analytic::{
    feature_vector, AnalyticModel, GroupCoeffs, WorkloadFeatures, FEATURES,
};
use neura_chip::config::{ChipConfig, HbmPreset, TileSize};
use neura_lab::{ArtifactSession, RunRecord, Runner};
use neura_sparse::DatasetCatalog;

/// Golden bound on the mean absolute relative error (percent) at paper
/// scale.
const MEAN_BOUND_PCT: f64 = 5.0;

/// Golden bound on the worst-case absolute relative error (percent) at
/// paper scale.
const WORST_BOUND_PCT: f64 = 15.0;

fn usage() -> String {
    "usage: xval [--json [PATH]] [--dataset NAME]... [--tile T]... [--hbm P]...\n\
     \x20           [--frequency GHZ]... [--shrink N]... [--fit]\n\
     \n\
     --json [PATH]    write a machine-readable error artifact (default:\n\
     \x20                target/artifacts/xval.json)\n\
     --dataset NAME   sample this dataset (repeatable; default: the Table-1 suite)\n\
     --tile T         t4 | t16 | t64 (repeatable; default: pair each dataset with its\n\
     \x20                size-matched tier — smallest third t4, middle t16, largest t64)\n\
     --hbm P          hbm2 | hbm2-dual | ddr4 (repeatable; default: all three)\n\
     --frequency GHZ  clock frequency in GHz (repeatable; default: 1, 2)\n\
     --shrink N       workload shrink factor (repeatable; default: 1)\n\
     --dump           print the raw per-sample table as CSV and exit (the data --fit\n\
     \x20                fits against; defaults shrinks to 1, 2, 4, 8 like --fit)\n\
     --fit            refit the analytic coefficients from this run's cycle-level\n\
     \x20                samples and print the Rust table for crates/chip/src/analytic.rs\n\
     \x20                (default shrinks become 1, 2, 4, 8)"
        .to_string()
}

struct Args {
    datasets: Vec<String>,
    tiles: Vec<TileSize>,
    hbms: Vec<HbmPreset>,
    frequencies: Vec<f64>,
    shrinks: Vec<usize>,
    fit: bool,
    dump: bool,
    passthrough: Vec<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        datasets: Vec::new(),
        tiles: Vec::new(),
        hbms: Vec::new(),
        frequencies: Vec::new(),
        shrinks: Vec::new(),
        fit: false,
        dump: false,
        passthrough: Vec::new(),
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| bad_usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--dataset" => {
                let name = value("--dataset");
                if DatasetCatalog::by_name(&name).is_none() {
                    bad_usage(&format!("dataset {name:?} is not in the catalog"));
                }
                parsed.datasets.push(name);
            }
            "--tile" => {
                let raw = value("--tile");
                let tile = TileSize::ALL.into_iter().find(|t| t.label() == raw);
                parsed
                    .tiles
                    .push(tile.unwrap_or_else(|| bad_usage(&format!("unknown tile size {raw:?}"))));
            }
            "--hbm" => {
                let raw = value("--hbm");
                let preset = HbmPreset::ALL.into_iter().find(|p| p.name() == raw);
                parsed.hbms.push(
                    preset.unwrap_or_else(|| bad_usage(&format!("unknown HBM preset {raw:?}"))),
                );
            }
            "--frequency" => {
                let raw = value("--frequency");
                parsed.frequencies.push(match raw.parse::<f64>() {
                    Ok(f) if f.is_finite() && f > 0.0 => f,
                    _ => bad_usage(&format!("--frequency {raw:?} is not a positive GHz value")),
                });
            }
            "--shrink" => {
                let raw = value("--shrink");
                parsed.shrinks.push(match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => bad_usage(&format!("--shrink {raw:?} is not a positive integer")),
                });
            }
            "--fit" => parsed.fit = true,
            "--dump" => parsed.dump = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            // Only --json [PATH] is forwarded to the artifact session.
            "--json" => {
                parsed.passthrough.push(arg);
                if matches!(args.peek(), Some(next) if !next.starts_with("--")) {
                    parsed.passthrough.push(args.next().expect("peeked"));
                }
            }
            other => bad_usage(&format!("unrecognised argument {other:?}")),
        }
    }
    if parsed.datasets.is_empty() {
        parsed.datasets =
            DatasetCatalog::spgemm_suite().iter().map(|d| d.name.to_string()).collect();
    }
    if parsed.hbms.is_empty() {
        parsed.hbms = HbmPreset::ALL.to_vec();
    }
    if parsed.frequencies.is_empty() {
        parsed.frequencies = vec![1.0, 2.0];
    }
    if parsed.shrinks.is_empty() {
        parsed.shrinks = if parsed.fit || parsed.dump { vec![1, 2, 4, 8] } else { vec![1] };
    }
    parsed
}

/// One sampled point of the (dataset × tile × HBM × shrink) space.
/// Frequency is applied afterwards: it scales seconds, never cycles, so
/// one simulation covers every frequency row.
#[derive(Debug, Clone)]
struct Cell {
    dataset: String,
    tile: TileSize,
    hbm: HbmPreset,
    shrink: usize,
}

impl Cell {
    fn config(&self) -> ChipConfig {
        ChipConfig::for_tile_size(self.tile).with_hbm_preset(self.hbm)
    }
}

/// Both pricing paths on one cell.
#[derive(Debug, Clone, Copy)]
struct Measured {
    features: WorkloadFeatures,
    cycle_cycles: u64,
}

fn main() {
    let args = parse_args();
    let scale_mult = neura_bench::scale_multiplier();
    let runner = Runner::from_env();

    let mut cells = Vec::new();
    for dataset in &args.datasets {
        let tiles = if args.tiles.is_empty() {
            vec![size_matched_tile(dataset)]
        } else {
            args.tiles.clone()
        };
        for &tile in &tiles {
            for &hbm in &args.hbms {
                for &shrink in &args.shrinks {
                    cells.push(Cell { dataset: dataset.clone(), tile, hbm, shrink });
                }
            }
        }
    }

    // One cycle-level simulation per cell, fanned out on the lab runner;
    // the symbolic feature pass rides along in the same worker.
    let measured = runner.run(&cells, |_, cell: &Cell| {
        let a = sim_matrix_at_fidelity(&cell.dataset, cell.shrink);
        let features = WorkloadFeatures::from_square(&a);
        let mut chip = Accelerator::new(cell.config());
        let report = chip.run_spgemm(&a, &a).expect("simulation drains").report;
        Measured { features, cycle_cycles: report.total_cycles }
    });

    if args.dump {
        // Raw sample table for offline model experiments (`--fit` is the
        // supported fitting path; this exposes what it fits against).
        println!(
            "dataset,tile,hbm,shrink,rows,nnz,pp,out,max_row_pp,active_cols,instr1,instr2,\
             instr4,instr8,cycles,cores,mems,tiles,bytes_per_cycle,latency"
        );
        for (cell, m) in cells.iter().zip(&measured) {
            let config = cell.config();
            println!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                cell.dataset,
                cell.tile.label(),
                cell.hbm.name(),
                cell.shrink,
                m.features.rows,
                m.features.nnz,
                m.features.partial_products,
                m.features.output_nnz,
                m.features.max_row_pp,
                m.features.active_cols,
                m.features.mmh_instructions[0],
                m.features.mmh_instructions[1],
                m.features.mmh_instructions[2],
                m.features.mmh_instructions[3],
                m.cycle_cycles,
                config.total_cores(),
                config.total_mems(),
                config.tiles,
                config.hbm.bytes_per_cycle,
                config.hbm.row_miss_latency + config.hbm.base_latency,
            );
        }
        return;
    }

    if args.fit {
        fit_and_print(&cells, &measured);
        return;
    }

    let mut session = ArtifactSession::from_arg_list("xval", scale_mult, args.passthrough);
    let model = AnalyticModel::calibrated();

    // Per-cell errors (signed, percent). Frequencies add service-time rows
    // but never new error samples: cycles are frequency-independent.
    let mut per_dataset: Vec<(String, Vec<f64>)> =
        args.datasets.iter().map(|d| (d.clone(), Vec::new())).collect();
    for (cell, m) in cells.iter().zip(&measured) {
        let config = cell.config();
        let analytic_cycles = model.cycles(&config, &m.features);
        let rel_error_pct =
            (analytic_cycles - m.cycle_cycles as f64) / m.cycle_cycles as f64 * 100.0;
        let slot = per_dataset
            .iter_mut()
            .find(|(d, _)| d == &cell.dataset)
            .expect("cells come from the dataset list");
        slot.1.push(rel_error_pct);
        for &freq in &args.frequencies {
            let s_per_cycle = config.clone().with_frequency_ghz(freq).seconds_per_cycle();
            let mut record = RunRecord::new(format!(
                "xval/{}/{}/{}/x{}/f{}",
                cell.dataset,
                cell.tile.label(),
                cell.hbm.name(),
                cell.shrink,
                freq,
            ))
            .unit_metric("cycle_cycles", m.cycle_cycles as f64, "cycles")
            .unit_metric("analytic_cycles", analytic_cycles, "cycles")
            .metric("rel_error_pct", rel_error_pct)
            .metric("abs_rel_error_pct", rel_error_pct.abs())
            .unit_metric("cycle_service_ms", m.cycle_cycles as f64 * s_per_cycle * 1e3, "ms")
            .unit_metric(
                "analytic_service_ms",
                analytic_cycles * s_per_cycle * 1e3,
                "ms",
            );
            record.params.push(("dataset".to_string(), cell.dataset.clone()));
            record.params.push(("tile".to_string(), cell.tile.label().to_string()));
            record.params.push(("hbm".to_string(), cell.hbm.name().to_string()));
            record.params.push(("shrink".to_string(), cell.shrink.to_string()));
            record.params.push(("frequency_ghz".to_string(), freq.to_string()));
            session.push(record);
        }
    }

    let mut rows = Vec::new();
    let mut all_errors: Vec<f64> = Vec::new();
    for (dataset, errors) in &per_dataset {
        let mean_abs = errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64;
        let worst_abs = errors.iter().map(|e| e.abs()).fold(0.0, f64::max);
        all_errors.extend(errors);
        rows.push(vec![
            dataset.clone(),
            errors.len().to_string(),
            fmt(mean_abs, 2),
            fmt(worst_abs, 2),
        ]);
        let mut record = RunRecord::new(format!("xval/{dataset}/summary"))
            .metric("cells", errors.len() as f64)
            .unit_metric("mean_abs_rel_error_pct", mean_abs, "%")
            .unit_metric("worst_abs_rel_error_pct", worst_abs, "%");
        record.params.push(("dataset".to_string(), dataset.clone()));
        session.push(record);
    }
    let mean_abs = all_errors.iter().map(|e| e.abs()).sum::<f64>() / all_errors.len() as f64;
    let worst_abs = all_errors.iter().map(|e| e.abs()).fold(0.0, f64::max);
    rows.push(vec![
        "ALL".to_string(),
        all_errors.len().to_string(),
        fmt(mean_abs, 2),
        fmt(worst_abs, 2),
    ]);
    let mut summary = RunRecord::new("xval/summary")
        .metric("cells", all_errors.len() as f64)
        .metric("datasets", per_dataset.len() as f64)
        .unit_metric("mean_abs_rel_error_pct", mean_abs, "%")
        .unit_metric("worst_abs_rel_error_pct", worst_abs, "%")
        .unit_metric("mean_bound_pct", MEAN_BOUND_PCT, "%")
        .unit_metric("worst_bound_pct", WORST_BOUND_PCT, "%");
    let tiles_label = if args.tiles.is_empty() {
        "size-matched".to_string()
    } else {
        join(args.tiles.iter().map(|t| t.label()))
    };
    summary.params.push(("tiles".to_string(), tiles_label.clone()));
    summary.params.push(("hbms".to_string(), join(args.hbms.iter().map(|h| h.name()))));
    summary.params.push(("shrinks".to_string(), join(args.shrinks.iter().map(|s| s.to_string()))));
    summary
        .params
        .push(("frequencies".to_string(), join(args.frequencies.iter().map(|f| f.to_string()))));
    session.push(summary);

    print_table(
        "Cross-validation: analytic estimate vs cycle-accurate simulator",
        &["Dataset", "Cells", "Mean |err| %", "Worst |err| %"],
        &rows,
    );
    println!(
        "\n{} cells = {} dataset(s) x {} tile(s) x {} HBM preset(s) x {} shrink(s);\n\
         each cell runs one cycle-level simulation and one closed-form estimate.\n\
         Relative error is (analytic - cycle) / cycle on total cycles (frequency\n\
         scales both paths' service times identically).",
        cells.len(),
        per_dataset.len(),
        tiles_label,
        args.hbms.len(),
        args.shrinks.len(),
    );

    session.finish();

    // The golden: strict at paper scale, presence-only under a smoke
    // multiplier (32-node matrices say nothing about paper-scale error).
    if scale_mult <= 1 {
        let mean_ok = mean_abs <= MEAN_BOUND_PCT;
        let worst_ok = worst_abs <= WORST_BOUND_PCT;
        println!(
            "golden [strict]: mean |err| {} <= {MEAN_BOUND_PCT}% -> {}; worst |err| {} <= \
             {WORST_BOUND_PCT}% -> {}",
            fmt(mean_abs, 2),
            if mean_ok { "pass" } else { "FAIL" },
            fmt(worst_abs, 2),
            if worst_ok { "pass" } else { "FAIL" },
        );
        if !(mean_ok && worst_ok) {
            eprintln!("xval: analytic model error exceeds the pinned bound");
            std::process::exit(1);
        }
    } else {
        let present = mean_abs.is_finite() && worst_abs.is_finite() && mean_abs >= 0.0;
        println!(
            "golden [smoke]: error metrics present and finite -> {}",
            if present { "pass" } else { "FAIL" }
        );
        if !present {
            std::process::exit(1);
        }
    }
}

fn join(items: impl Iterator<Item = impl ToString>) -> String {
    items.map(|i| i.to_string()).collect::<Vec<_>>().join("+")
}

/// The chip tier a practitioner would deploy for a graph of this size:
/// terciles of the Table-1 suite by node count. Smallest third Tile-4,
/// middle third Tile-16, largest third Tile-64; datasets outside the
/// suite are placed by the same thresholds.
fn size_matched_tile(name: &str) -> TileSize {
    let dataset = DatasetCatalog::by_name(name).expect("validated at parse time");
    let mut nodes: Vec<_> = DatasetCatalog::spgemm_suite().iter().map(|d| d.nodes).collect();
    nodes.sort_unstable();
    let small = nodes[nodes.len().div_ceil(3) - 1];
    let mid = nodes[(2 * nodes.len()).div_ceil(3) - 1];
    if dataset.nodes <= small {
        TileSize::Tile4
    } else if dataset.nodes <= mid {
        TileSize::Tile16
    } else {
        TileSize::Tile64
    }
}

/// One fitting sample: the shipped feature vector, the oracle's cycle
/// count, and the shrink (paper-scale cells get extra fitting weight).
struct FitSample {
    z: [f64; FEATURES],
    cycles: f64,
    shrink: usize,
}

/// Extra weight on paper-scale (shrink-1) samples. The golden is judged
/// at shrink 1; reduced-fidelity cells carry irreducible instance noise
/// (re-sampled graphs), so they anchor the scaling trend without being
/// allowed to pull the paper-scale fit off its bounds. 256 is the
/// smallest power of two that meets both bounds on the default grid.
const SHRINK1_WEIGHT: f64 = 256.0;

/// Refits the per-(tile × HBM preset) coefficient groups from this run's
/// samples and prints the Rust table to paste into
/// `crates/chip/src/analytic.rs`, plus the achieved training error per
/// group (paper-scale cells and the full grid separately — the golden
/// only judges the former).
fn fit_and_print(cells: &[Cell], measured: &[Measured]) {
    let mut groups = Vec::new();
    let mut rows = Vec::new();
    for tile in TileSize::ALL {
        for hbm in HbmPreset::ALL {
            let samples: Vec<FitSample> = cells
                .iter()
                .zip(measured)
                .filter(|(cell, _)| cell.tile == tile && cell.hbm == hbm)
                .map(|(cell, m)| FitSample {
                    z: feature_vector(&cell.config(), &m.features),
                    cycles: m.cycle_cycles as f64,
                    shrink: cell.shrink,
                })
                .collect();
            assert!(
                samples.len() > FEATURES + 2,
                "need more than {} samples to fit the {}/{} group (got {}); widen the grid",
                FEATURES + 2,
                tile.label(),
                hbm.name(),
                samples.len(),
            );
            let coeffs = fit_group(tile, hbm, &samples);
            let model_of = |s: &FitSample| {
                let workload = coeffs.instr_per_core * s.z[0]
                    + coeffs.active_cols * s.z[1]
                    + coeffs.pp_per_core * s.z[2]
                    + coeffs.max_row_pp * s.z[3]
                    + coeffs.out_per_mem * s.z[4]
                    + coeffs.nnz_per_core * s.z[5]
                    + coeffs.rows * s.z[6];
                (coeffs.intercept + workload.max(0.0)).max(1.0)
            };
            let errors = |filter: &dyn Fn(&FitSample) -> bool| {
                let e: Vec<f64> = samples
                    .iter()
                    .filter(|s| filter(s))
                    .map(|s| ((model_of(s) - s.cycles) / s.cycles * 100.0).abs())
                    .collect();
                (e.iter().sum::<f64>() / e.len().max(1) as f64, e.into_iter().fold(0.0, f64::max))
            };
            let (s1_mean, s1_worst) = errors(&|s| s.shrink == 1);
            let (all_mean, all_worst) = errors(&|_| true);
            rows.push(vec![
                format!("{}/{}", tile.label(), hbm.name()),
                samples.len().to_string(),
                fmt(s1_mean, 2),
                fmt(s1_worst, 2),
                fmt(all_mean, 2),
                fmt(all_worst, 2),
            ]);
            groups.push(coeffs);
        }
    }

    print_table(
        "Fit quality (training error per group; golden judges shrink-1 only)",
        &["Group", "Samples", "s1 mean %", "s1 worst %", "all mean %", "all worst %"],
        &rows,
    );
    println!("\nconst CALIBRATED_GROUPS: [GroupCoeffs; GROUPS] = [");
    for g in &groups {
        println!("    GroupCoeffs {{");
        println!("        tile: TileSize::{:?},", g.tile);
        println!("        hbm: HbmPreset::{:?},", g.hbm);
        println!("        intercept: {:?},", g.intercept);
        println!("        instr_per_core: {:?},", g.instr_per_core);
        println!("        active_cols: {:?},", g.active_cols);
        println!("        pp_per_core: {:?},", g.pp_per_core);
        println!("        max_row_pp: {:?},", g.max_row_pp);
        println!("        out_per_mem: {:?},", g.out_per_mem);
        println!("        nnz_per_core: {:?},", g.nnz_per_core);
        println!("        rows: {:?},", g.rows);
        println!("    }},");
    }
    println!("];");
}

/// Weighted least squares for one (tile, HBM preset) group in
/// relative-error space: each sample is weighted `1 / cycles²` (so the
/// residual is effectively relative, not absolute) with shrink-1 cells
/// up-weighted by [`SHRINK1_WEIGHT`]. The nnz coefficient is the one the
/// model's monotonicity guarantee constrains, so a negative solution
/// drops that column and refits; all other coefficients keep free signs.
/// The intercept is floored at 1 afterwards (the model's positivity
/// floor) — a shift of O(100) cycles on O(10⁴⁺)-cycle groups.
fn fit_group(tile: TileSize, hbm: HbmPreset, samples: &[FitSample]) -> GroupCoeffs {
    let mut nnz_active = true;
    loop {
        let solution = least_squares(samples, nnz_active);
        if nnz_active && solution[6] < 0.0 {
            nnz_active = false;
            continue;
        }
        return GroupCoeffs {
            tile,
            hbm,
            intercept: solution[0].max(1.0),
            instr_per_core: solution[1],
            active_cols: solution[2],
            pp_per_core: solution[3],
            max_row_pp: solution[4],
            out_per_mem: solution[5],
            nnz_per_core: solution[6],
            rows: solution[7],
        };
    }
}

/// Weighted least squares over the feature columns (plus an intercept)
/// via the normal equations. Returns `[intercept, c0..c6]` with the nnz
/// column forced to zero when inactive.
fn least_squares(samples: &[FitSample], nnz_active: bool) -> [f64; FEATURES + 1] {
    const NNZ: usize = 5;
    let columns: Vec<usize> = (0..FEATURES).filter(|&i| nnz_active || i != NNZ).collect();
    let n = 1 + columns.len();
    let mut ata = vec![vec![0.0f64; n]; n];
    let mut atb = vec![0.0f64; n];
    for s in samples {
        let weight =
            if s.shrink == 1 { SHRINK1_WEIGHT } else { 1.0 } / (s.cycles * s.cycles).max(1.0);
        let mut row = Vec::with_capacity(n);
        row.push(1.0);
        row.extend(columns.iter().map(|&c| s.z[c]));
        for i in 0..n {
            atb[i] += weight * row[i] * s.cycles;
            for j in 0..n {
                ata[i][j] += weight * row[i] * row[j];
            }
        }
    }
    let solved = solve_linear(&mut ata, &mut atb);
    let mut full = [0.0f64; FEATURES + 1];
    full[0] = solved[0];
    for (slot, &column) in solved[1..].iter().zip(&columns) {
        full[1 + column] = *slot;
    }
    full
}

/// Gaussian elimination with partial pivoting. Panics on a singular
/// system — with an intercept column and more distinct samples than
/// features the normal equations are well-posed, so a singular matrix
/// means the sample grid degenerated (e.g. a single dataset at a single
/// shrink, or features that are exactly collinear on the chosen grid).
fn solve_linear(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for pivot in 0..n {
        let best = (pivot..n)
            .max_by(|&i, &j| {
                a[i][pivot].abs().partial_cmp(&a[j][pivot].abs()).expect("finite matrix")
            })
            .expect("non-empty");
        a.swap(pivot, best);
        b.swap(pivot, best);
        assert!(
            a[pivot][pivot].abs() > 1e-12,
            "singular normal equations: the sample grid is degenerate"
        );
        let (head, tail) = a.split_at_mut(pivot + 1);
        let pivot_row = &head[pivot];
        for (offset, row) in tail.iter_mut().enumerate() {
            let factor = row[pivot] / pivot_row[pivot];
            for (entry, &p) in row[pivot..].iter_mut().zip(&pivot_row[pivot..]) {
                *entry -= factor * p;
            }
            b[pivot + 1 + offset] -= factor * b[pivot];
        }
    }
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for col in row + 1..n {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    x
}

fn bad_usage(message: &str) -> ! {
    eprintln!("{message}\n{}", usage());
    std::process::exit(2);
}
