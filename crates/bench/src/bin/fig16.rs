//! Figure 16 — SpGEMM speedup of NeuraChip Tile-16 over CPUs, GPUs and prior
//! SpGEMM accelerators, per dataset plus the geometric mean.
//!
//! Run with `cargo run --release -p neura_bench --bin fig16`.

use neura_baselines::spgemm::{geometric_mean, SpgemmModel, SpgemmPlatform};
use neura_baselines::WorkloadProfile;
use neura_bench::{fmt, print_table, scaled_matrix, MODEL_SCALE, SIM_SCALE};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::ChipConfig;
use neura_sparse::DatasetCatalog;

fn main() {
    let baselines = SpgemmPlatform::FIGURE16_BASELINES;
    let tile16 = SpgemmPlatform::NeuraChip { tile: 16 };
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(baselines.iter().map(|b| b.name().to_string()));

    let mut rows = Vec::new();
    let mut per_baseline: Vec<Vec<f64>> = vec![Vec::new(); baselines.len()];
    for dataset in DatasetCatalog::spgemm_suite() {
        let a = scaled_matrix(&dataset, MODEL_SCALE);
        let profile = WorkloadProfile::from_square(dataset.name, &a);
        let ours = tile16.estimate(&profile);
        let mut row = vec![dataset.name.to_string()];
        for (i, baseline) in baselines.iter().enumerate() {
            let speedup = ours.speedup_over(&baseline.estimate(&profile));
            per_baseline[i].push(speedup);
            row.push(fmt(speedup, 2));
        }
        rows.push(row);
    }
    let mut gmean_row = vec!["G-Mean".to_string()];
    for speedups in &per_baseline {
        gmean_row.push(fmt(geometric_mean(speedups), 2));
    }
    rows.push(gmean_row);

    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table("Figure 16: NeuraChip Tile-16 speedup over each platform", &header_refs, &rows);
    println!(
        "\nPaper geomean speedups: MKL 22.1x, cuSPARSE 17.1x, CUSP 13.3x, hipSPARSE 16.7x, \
         OuterSPACE 6.6x, SpArch 2.4x, Gamma 1.5x."
    );

    // Supporting evidence from the cycle-level simulator on a few small analogs.
    println!("\nCycle-level Tile-16 simulation on small analogs (supporting evidence):");
    let mut sim_rows = Vec::new();
    for name in ["facebook", "wiki-Vote", "p2p-Gnutella31", "ca-CondMat"] {
        let dataset = DatasetCatalog::by_name(name).expect("dataset exists");
        let a = scaled_matrix(&dataset, SIM_SCALE.max(dataset.nodes / 2_000));
        let mut chip = Accelerator::new(ChipConfig::tile_16());
        match chip.run_spgemm(&a, &a) {
            Ok(run) => sim_rows.push(vec![
                name.to_string(),
                a.rows().to_string(),
                a.nnz().to_string(),
                run.report.total_cycles.to_string(),
                fmt(run.report.gops, 2),
                fmt(run.report.core_utilization * 100.0, 1),
            ]),
            Err(e) => sim_rows.push(vec![name.to_string(), format!("simulation failed: {e}")]),
        }
    }
    print_table(
        "Simulated Tile-16 runs",
        &["Dataset", "Nodes (sim)", "Edges (sim)", "Cycles", "GOP/s", "Core util %"],
        &sim_rows,
    );
}
