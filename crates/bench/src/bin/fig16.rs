//! Figure 16 — SpGEMM speedup of NeuraChip Tile-16 over CPUs, GPUs and prior
//! SpGEMM accelerators, per dataset plus the geometric mean.
//!
//! The per-dataset modeling and the supporting cycle-level simulations are
//! `neura_lab` sweeps over the dataset axis, executed in parallel; the
//! geometric-mean speedups are checked against the pinned golden values
//! (strictly at paper scale, presence-only under `NEURA_BENCH_SCALE_MULT`).
//! Run with `cargo run --release -p neura_bench --bin fig16` (add `--json
//! [path]` for a machine-readable artifact).

use neura_baselines::spgemm::{geometric_mean, SpgemmModel, SpgemmPlatform};
use neura_baselines::WorkloadProfile;
use neura_bench::{fmt, print_table, scaled_matrix_by_name, MODEL_SCALE, SIM_SCALE};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::ChipConfig;
use neura_lab::golden::{self, slugify};
use neura_lab::{ArtifactSession, ExperimentSpec, RunRecord, Runner, SweepGrid};
use neura_sparse::DatasetCatalog;

fn main() {
    let scale_mult = neura_bench::scale_multiplier();
    let mut session = ArtifactSession::from_args("fig16", scale_mult);
    let runner = Runner::from_env();

    let baselines = SpgemmPlatform::FIGURE16_BASELINES;
    let tile16 = SpgemmPlatform::NeuraChip { tile: 16 };
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(baselines.iter().map(|b| b.name().to_string()));

    // Modeled speedups: one sweep point per Table-1 dataset.
    let dataset_names: Vec<String> =
        DatasetCatalog::spgemm_suite().iter().map(|d| d.name.to_string()).collect();
    let spec = ExperimentSpec::new(
        "fig16",
        ChipConfig::tile_16(),
        SweepGrid::new().datasets(dataset_names),
    );
    let results = runner.run_spec(&spec, |point| {
        let dataset = point.dataset.as_deref().expect("grid has a dataset axis");
        let a = scaled_matrix_by_name(dataset, MODEL_SCALE);
        let profile = WorkloadProfile::from_square(dataset, &a);
        let ours = tile16.estimate(&profile);
        baselines
            .iter()
            .map(|baseline| ours.speedup_over(&baseline.estimate(&profile)))
            .collect::<Vec<f64>>()
    });

    let mut rows = Vec::new();
    let mut per_baseline: Vec<Vec<f64>> = vec![Vec::new(); baselines.len()];
    for (point, speedups) in &results {
        let dataset = point.dataset.clone().expect("dataset axis");
        let mut row = vec![dataset];
        let mut record = RunRecord::new(&point.id);
        record.params = point.params();
        for ((baseline, speedup), sink) in baselines.iter().zip(speedups).zip(&mut per_baseline) {
            sink.push(*speedup);
            row.push(fmt(*speedup, 2));
            record = record.unit_metric(slugify(baseline.name()), *speedup, "x");
        }
        rows.push(row);
        session.push(record);
    }

    let mut gmean_row = vec!["G-Mean".to_string()];
    let mut gmean_record = RunRecord::new("fig16/geomean");
    for (baseline, speedups) in baselines.iter().zip(&per_baseline) {
        let gmean = geometric_mean(speedups);
        gmean_row.push(fmt(gmean, 2));
        gmean_record = gmean_record.unit_metric(slugify(baseline.name()), gmean, "x");
    }
    rows.push(gmean_row);
    session.push(gmean_record);

    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table("Figure 16: NeuraChip Tile-16 speedup over each platform", &header_refs, &rows);
    println!(
        "\nPaper geomean speedups: MKL 22.1x, cuSPARSE 17.1x, CUSP 13.3x, hipSPARSE 16.7x, \
         OuterSPACE 6.6x, SpArch 2.4x, Gamma 1.5x."
    );

    // Supporting evidence from the cycle-level simulator on a few small
    // analogs — a second sweep, one full simulation per point.
    println!("\nCycle-level Tile-16 simulation on small analogs (supporting evidence):");
    let sim_spec = ExperimentSpec::new(
        "fig16/sim",
        ChipConfig::tile_16(),
        SweepGrid::new().datasets(["facebook", "wiki-Vote", "p2p-Gnutella31", "ca-CondMat"]),
    );
    let sim_results = runner.run_spec(&sim_spec, |point| {
        let name = point.dataset.as_deref().expect("grid has a dataset axis");
        let dataset = DatasetCatalog::by_name(name).expect("dataset exists");
        let a = neura_bench::scaled_matrix(&dataset, SIM_SCALE.max(dataset.nodes / 2_000));
        let mut chip = Accelerator::new(point.config.clone());
        let run = chip.run_spgemm(&a, &a);
        (a.rows(), a.nnz(), run.map(|r| r.report))
    });
    let mut sim_rows = Vec::new();
    for (point, (nodes, edges, report)) in &sim_results {
        let name = point.dataset.clone().expect("dataset axis");
        match report {
            Ok(report) => {
                sim_rows.push(vec![
                    name,
                    nodes.to_string(),
                    edges.to_string(),
                    report.total_cycles.to_string(),
                    fmt(report.gops, 2),
                    fmt(report.core_utilization * 100.0, 1),
                ]);
                let mut record = RunRecord::new(&point.id)
                    .metric("sim_nodes", *nodes as f64)
                    .metric("sim_edges", *edges as f64)
                    .with_execution(report);
                record.params = point.params();
                session.push(record);
            }
            Err(e) => sim_rows.push(vec![name, format!("simulation failed: {e}")]),
        }
    }
    print_table(
        "Simulated Tile-16 runs",
        &["Dataset", "Nodes (sim)", "Edges (sim)", "Cycles", "GOP/s", "Core util %"],
        &sim_rows,
    );

    let artifact = session.finish();
    golden::check(&artifact, golden::fig16_goldens(), golden::Mode::from_scale_mult(scale_mult))
        .print_and_enforce("Figure 16");
}
