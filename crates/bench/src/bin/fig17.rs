//! Figure 17 — GCN speedup of NeuraChip Tile-16 over prior GNN accelerators.
//!
//! The per-dataset GCN-layer modeling is a `neura_lab` sweep over the GNN
//! suite, executed in parallel; the average speedups are checked against the
//! pinned golden values (strictly at paper scale, presence-only under
//! `NEURA_BENCH_SCALE_MULT`). Run with
//! `cargo run --release -p neura_bench --bin fig17` (add `--json [path]`
//! for a machine-readable artifact).

use neura_baselines::gnn::{speedup_over, GnnModel, GnnPlatform};
use neura_baselines::WorkloadProfile;
use neura_bench::{fmt, print_table, scaled_matrix, scaled_matrix_by_name};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::ChipConfig;
use neura_chip::gcn::run_gcn_layer;
use neura_lab::golden::{self, slugify};
use neura_lab::{ArtifactSession, ExperimentSpec, RunRecord, Runner, SweepGrid};
use neura_sparse::gen::{feature_matrix, weight_matrix};
use neura_sparse::DatasetCatalog;

const HIDDEN_DIM: usize = 64;

fn main() {
    let scale_mult = neura_bench::scale_multiplier();
    let mut session = ArtifactSession::from_args("fig17", scale_mult);
    let runner = Runner::from_env();

    let baselines = GnnPlatform::FIGURE17_BASELINES;
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(baselines.iter().map(|b| b.name().to_string()));

    let datasets = DatasetCatalog::gnn_suite();
    let spec = ExperimentSpec::new(
        "fig17",
        ChipConfig::tile_16(),
        SweepGrid::new().datasets(datasets.iter().map(|d| d.name)),
    );
    let results = runner.run_spec(&spec, |point| {
        let name = point.dataset.as_deref().expect("grid has a dataset axis");
        let dataset = datasets.iter().find(|d| d.name == name).expect("dataset in suite");
        let a = scaled_matrix(dataset, 8);
        let features = dataset.feature_dim.min(512);
        let profile = WorkloadProfile::from_aggregation(name, &a, features);
        baselines
            .iter()
            .map(|baseline| speedup_over(*baseline, &profile, features, HIDDEN_DIM))
            .collect::<Vec<f64>>()
    });

    let mut rows = Vec::new();
    let mut sums = vec![0.0f64; baselines.len()];
    for (point, speedups) in &results {
        let mut row = vec![point.dataset.clone().expect("dataset axis")];
        let mut record = RunRecord::new(&point.id);
        record.params = point.params();
        for ((baseline, speedup), sum) in baselines.iter().zip(speedups).zip(&mut sums) {
            *sum += *speedup;
            row.push(fmt(*speedup, 2));
            record = record.unit_metric(slugify(baseline.name()), *speedup, "x");
        }
        rows.push(row);
        session.push(record);
    }
    let mut avg_row = vec!["Average".to_string()];
    let mut avg_record = RunRecord::new("fig17/average");
    for (baseline, sum) in baselines.iter().zip(&sums) {
        let average = sum / datasets.len() as f64;
        avg_row.push(fmt(average, 2));
        avg_record = avg_record.unit_metric(slugify(baseline.name()), average, "x");
    }
    rows.push(avg_row);
    session.push(avg_record);

    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 17: NeuraChip Tile-16 speedup over GNN accelerators (GCN layer)",
        &header_refs,
        &rows,
    );
    println!("\nPaper average speedups: EnGN 1.29x, GROW 1.58x, HyGCN 1.69x, FlowGNN 1.30x.");

    // Cycle-level evidence: one GCN layer on a Cora analog.
    let mut a = scaled_matrix_by_name("cora", 8);
    a.row_normalize();
    let x = feature_matrix(a.cols(), 32, 11);
    let w = weight_matrix(32, 16, 12);
    let mut chip = Accelerator::new(ChipConfig::tile_16());
    match run_gcn_layer(&mut chip, &a, &x, &w) {
        Ok(run) => {
            println!("\nSimulated GCN layer on the Cora analog (Tile-16):");
            println!("  aggregation cycles : {}", run.breakdown.aggregation_cycles);
            println!("  combination cycles : {}", run.breakdown.combination_cycles);
            println!("  layer GFLOP/s      : {:.2}", run.breakdown.gops);
            session.push(
                RunRecord::new("fig17/sim/cora")
                    .param("dataset", "cora")
                    .param("tile", "Tile-16")
                    .unit_metric(
                        "aggregation_cycles",
                        run.breakdown.aggregation_cycles as f64,
                        "cycles",
                    )
                    .unit_metric(
                        "combination_cycles",
                        run.breakdown.combination_cycles as f64,
                        "cycles",
                    )
                    .unit_metric("gops", run.breakdown.gops, "GFLOP/s"),
            );
        }
        Err(e) => println!("\nSimulated GCN layer failed: {e}"),
    }

    let artifact = session.finish();
    golden::check(&artifact, golden::fig17_goldens(), golden::Mode::from_scale_mult(scale_mult))
        .print_and_enforce("Figure 17");
}
