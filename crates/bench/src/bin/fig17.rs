//! Figure 17 — GCN speedup of NeuraChip Tile-16 over prior GNN accelerators.
//!
//! Run with `cargo run --release -p neura_bench --bin fig17`.

use neura_baselines::gnn::{speedup_over, GnnModel, GnnPlatform};
use neura_baselines::WorkloadProfile;
use neura_bench::{fmt, print_table, scaled_matrix};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::ChipConfig;
use neura_chip::gcn::run_gcn_layer;
use neura_sparse::gen::{feature_matrix, weight_matrix};
use neura_sparse::DatasetCatalog;

const HIDDEN_DIM: usize = 64;

fn main() {
    let baselines = GnnPlatform::FIGURE17_BASELINES;
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(baselines.iter().map(|b| b.name().to_string()));

    let mut rows = Vec::new();
    let mut sums = vec![0.0f64; baselines.len()];
    let datasets = DatasetCatalog::gnn_suite();
    for dataset in &datasets {
        let a = scaled_matrix(dataset, 8);
        let features = dataset.feature_dim.min(512);
        let profile = WorkloadProfile::from_aggregation(dataset.name, &a, features);
        let mut row = vec![dataset.name.to_string()];
        for (i, baseline) in baselines.iter().enumerate() {
            let s = speedup_over(*baseline, &profile, features, HIDDEN_DIM);
            sums[i] += s;
            row.push(fmt(s, 2));
        }
        rows.push(row);
    }
    let mut avg_row = vec!["Average".to_string()];
    for s in &sums {
        avg_row.push(fmt(s / datasets.len() as f64, 2));
    }
    rows.push(avg_row);
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 17: NeuraChip Tile-16 speedup over GNN accelerators (GCN layer)",
        &header_refs,
        &rows,
    );
    println!("\nPaper average speedups: EnGN 1.29x, GROW 1.58x, HyGCN 1.69x, FlowGNN 1.30x.");

    // Cycle-level evidence: one GCN layer on a Cora analog.
    let cora = DatasetCatalog::by_name("cora").expect("cora exists");
    let mut a = scaled_matrix(&cora, 8);
    a.row_normalize();
    let x = feature_matrix(a.cols(), 32, 11);
    let w = weight_matrix(32, 16, 12);
    let mut chip = Accelerator::new(ChipConfig::tile_16());
    match run_gcn_layer(&mut chip, &a, &x, &w) {
        Ok(run) => {
            println!("\nSimulated GCN layer on the Cora analog (Tile-16):");
            println!("  aggregation cycles : {}", run.breakdown.aggregation_cycles);
            println!("  combination cycles : {}", run.breakdown.combination_cycles);
            println!("  layer GFLOP/s      : {:.2}", run.breakdown.gops);
        }
        Err(e) => println!("\nSimulated GCN layer failed: {e}"),
    }
}
