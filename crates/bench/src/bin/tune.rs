//! `ChipConfig` auto-tuner: successive halving over a coarse design-space
//! grid, per dataset, with the paper-default Tile-16 chip as the baseline.
//!
//! The search grid covers the MMH tile height, HashPad size and the
//! scaling axes the paper does not sweep (NeuraCores per tile, router
//! buffering, HBM preset); early rungs run on further-shrunk workloads and
//! survivors are re-simulated at increasing fidelity (see
//! `neura_lab::tune`). Run with
//! `cargo run --release -p neura_bench --bin tune` (add `--json [path]`
//! for a machine-readable artifact). Flags:
//!
//! - `--dataset NAME` — tune for one dataset (repeatable; default: the
//!   whole Table-1 SpGEMM suite)
//! - `--objective cycles|energy-delay|speedup` — what to minimise
//!   (default `cycles`; `speedup` minimises execution time and reports the
//!   factor over the paper default)
//! - `--budget N` — cap total simulations per dataset (rung 0, the full
//!   grid, plus one baseline run always execute; a truncated ladder stays
//!   at its reduced fidelity; default: unlimited, i.e. the full halving
//!   ladder)

use neura_bench::{fmt, print_table, sim_matrix_at_fidelity};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::{ChipConfig, HbmPreset};
use neura_lab::{ArtifactSession, Objective, Runner, SweepGrid, TuneSpec, Tuner};
use neura_sparse::{CsrMatrix, DatasetCatalog};

/// The coarse search grid for one dataset. Every axis includes the paper
/// default, so the baseline configuration is itself a grid member.
fn tune_grid(dataset: &str) -> SweepGrid {
    SweepGrid::new()
        .datasets([dataset])
        .mmh_tiles([2, 4, 8])
        .hashlines([1024, 2048, 4096])
        .cores_per_tile([4, 8])
        .router_buffers([8, 16])
        .hbm_presets([HbmPreset::Hbm2, HbmPreset::Hbm2DualStack])
}

fn usage() -> String {
    "usage: tune [--json [PATH]] [--dataset NAME]... [--objective OBJ] [--budget N]\n\
     \n\
     --json [PATH]    write a machine-readable artifact (default: target/artifacts/tune.json)\n\
     --dataset NAME   tune for this dataset (repeatable; default: the Table-1 SpGEMM suite)\n\
     --objective OBJ  cycles | energy-delay | speedup (default: cycles)\n\
     --budget N       max simulations per dataset; rung 0 + one baseline run always\n\
     \x20                execute, truncated ladders stay at reduced fidelity (default: unlimited)"
        .to_string()
}

fn main() {
    let mut datasets: Vec<String> = Vec::new();
    let mut objective = Objective::Cycles;
    let mut budget = usize::MAX;
    let mut passthrough: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dataset" => {
                let name = args.next().unwrap_or_else(|| bad_usage("--dataset needs a value"));
                if DatasetCatalog::by_name(&name).is_none() {
                    bad_usage(&format!("dataset {name:?} is not in the catalog"));
                }
                datasets.push(name);
            }
            "--objective" => {
                let raw = args.next().unwrap_or_else(|| bad_usage("--objective needs a value"));
                objective = Objective::parse(&raw)
                    .unwrap_or_else(|| bad_usage(&format!("unknown objective {raw:?}")));
            }
            "--budget" => {
                let raw = args.next().unwrap_or_else(|| bad_usage("--budget needs a value"));
                budget = match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => bad_usage(&format!("--budget {raw:?} is not a positive integer")),
                };
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            // Only --json [PATH] is forwarded to the artifact session; any
            // other argument gets *this* binary's usage, not the session's.
            "--json" => {
                passthrough.push(arg);
                if matches!(args.peek(), Some(next) if !next.starts_with("--")) {
                    passthrough.push(args.next().expect("peeked"));
                }
            }
            other => bad_usage(&format!("unrecognised argument {other:?}")),
        }
    }
    if datasets.is_empty() {
        datasets = DatasetCatalog::spgemm_suite().iter().map(|d| d.name.to_string()).collect();
    }

    let mut session =
        ArtifactSession::from_arg_list("tune", neura_bench::scale_multiplier(), passthrough);
    let runner = Runner::from_env();

    let mut rows = Vec::new();
    for dataset in &datasets {
        let spec = TuneSpec::new("tune", ChipConfig::tile_16(), tune_grid(dataset), objective)
            .with_budget(budget);
        let tuner = Tuner::new(spec);

        // One workload per fidelity, generated up front so every rung (and
        // every thread) reuses the same deterministic matrix.
        let matrices: Vec<(usize, CsrMatrix)> = tuner
            .shrinks()
            .into_iter()
            .map(|shrink| (shrink, sim_matrix_at_fidelity(dataset, shrink)))
            .collect();
        let outcome = tuner.run(&runner, |point, shrink| {
            let (_, a) = matrices
                .iter()
                .find(|(s, _)| *s == shrink)
                .expect("every planned shrink has a matrix");
            let mut chip = Accelerator::new(point.config.clone());
            chip.run_spgemm(a, a).expect("simulation drains").report
        });

        rows.push(vec![
            dataset.clone(),
            outcome.best.id.strip_prefix("tune/").unwrap_or(&outcome.best.id).to_string(),
            fmt(outcome.best_score, 3),
            fmt(outcome.baseline_score, 3),
            fmt(outcome.improvement_vs_default(), 3),
            outcome.rungs.len().to_string(),
            outcome.evaluations.to_string(),
        ]);
        session.extend(outcome.records().iter().cloned());
    }

    print_table(
        &format!("Auto-tuner: best ChipConfig per dataset (objective: {})", objective.name()),
        &[
            "Dataset",
            "Best configuration",
            &format!("Best ({})", objective.unit()),
            "Paper default",
            "Improvement",
            "Rungs",
            "Sims",
        ],
        &rows,
    );
    println!(
        "\nSuccessive halving over a {}-point grid per dataset (MMH tile x HashPad x\n\
         cores/tile x router buffer x HBM preset); early rungs simulate shrunk\n\
         workloads, survivors graduate to full fidelity. The best configuration is\n\
         compared against the paper-default Tile-16 chip at equal fidelity and seed,\n\
         so it is never worse on the chosen objective.",
        tune_grid("cora").len(),
    );

    session.finish();
}

fn bad_usage(message: &str) -> ! {
    eprintln!("{message}\n{}", usage());
    std::process::exit(2);
}
