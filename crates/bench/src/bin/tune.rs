//! `ChipConfig` auto-tuner: successive halving over a coarse design-space
//! grid, per dataset, with the paper-default Tile-16 chip as the baseline.
//!
//! The search grid covers the MMH tile height, HashPad size and the
//! scaling axes the paper does not sweep (NeuraCores per tile, router
//! buffering, HBM preset); early rungs run on further-shrunk workloads and
//! survivors are re-simulated at increasing fidelity (see
//! `neura_lab::tune`). Run with
//! `cargo run --release -p neura_bench --bin tune` (add `--json [path]`
//! for a machine-readable artifact). Flags:
//!
//! - `--dataset NAME` — tune for one dataset (repeatable; default: the
//!   whole Table-1 SpGEMM suite)
//! - `--objective cycles|energy-delay|speedup|serve-p99` — what to
//!   minimise (default `cycles`; `speedup` minimises execution time and
//!   reports the factor over the paper default; `serve-p99` scores each
//!   candidate by its p99 *serving* latency under a reference request
//!   stream — queueing included — calibrated to ~80% load on the
//!   paper-default chip, so the tuner optimises for tails under load
//!   instead of single-kernel cycles)
//! - `--budget N` — cap total simulations per dataset (rung 0, the full
//!   grid, plus one baseline run always execute; a truncated ladder stays
//!   at its reduced fidelity; default: unlimited, i.e. the full halving
//!   ladder)
//! - `--cost-model cycle|analytic|hybrid` — how rungs are priced (default
//!   `cycle`: every evaluation is a cycle-level simulation; `analytic`:
//!   every rung scores candidates with the closed-form
//!   `neura_chip::analytic` estimate in nanoseconds; `hybrid`: analytic
//!   screening on every rung except the last — only the final rung and the
//!   baseline comparison re-score on the cycle oracle, so the reported
//!   winner is simulator-verified at a fraction of the simulations)

use neura_baselines::workload::WorkloadProfile;
use neura_bench::{fmt, print_table, sim_matrix_at_fidelity};
use neura_chip::accelerator::Accelerator;
use neura_chip::analytic::{AnalyticModel, WorkloadFeatures};
use neura_chip::config::{ChipConfig, HbmPreset};
use neura_chip::power::PowerModel;
use neura_lab::spec::derive_seed;
use neura_lab::{ArtifactSession, Evaluation, Objective, Runner, SweepGrid, TuneSpec, Tuner};
use neura_serve::cost::{analytic_class_cost, CostModel};
use neura_serve::{
    simulate_stream, ArrivalProcess, ClassCost, CostTable, DispatchKind, Policy, Request,
    RequestClass, ShardGroup, StreamSpec,
};
use neura_sparse::{CsrMatrix, DatasetCatalog};

/// Per-request shrink classes of the serve-p99 reference stream (the same
/// ladder the `serve` binary uses).
const SERVE_SHRINKS: [usize; 3] = [1, 2, 4];

/// Base seed of the serve-p99 reference streams.
const SERVE_SEED: u64 = 0x5EED_CAFE;

/// The coarse search grid for one dataset. Every axis includes the paper
/// default, so the baseline configuration is itself a grid member.
fn tune_grid(dataset: &str) -> SweepGrid {
    SweepGrid::new()
        .datasets([dataset])
        .mmh_tiles([2, 4, 8])
        .hashlines([1024, 2048, 4096])
        .cores_per_tile([4, 8])
        .router_buffers([8, 16])
        .hbm_presets([HbmPreset::Hbm2, HbmPreset::Hbm2DualStack])
}

fn usage() -> String {
    "usage: tune [--json [PATH]] [--dataset NAME]... [--objective OBJ] [--budget N]\n\
     \x20           [--cost-model M]\n\
     \n\
     --json [PATH]    write a machine-readable artifact (default: target/artifacts/tune.json)\n\
     --dataset NAME   tune for this dataset (repeatable; default: the Table-1 SpGEMM suite)\n\
     --objective OBJ  cycles | energy-delay | speedup | serve-p99 (default: cycles;\n\
     \x20                serve-p99 scores p99 serving latency under a reference stream)\n\
     --budget N       max simulations per dataset; rung 0 + one baseline run always\n\
     \x20                execute, truncated ladders stay at reduced fidelity (default: unlimited)\n\
     --cost-model M   cycle | analytic | hybrid (default: cycle — every rung simulates;\n\
     \x20                analytic prices all rungs with the closed-form model; hybrid screens\n\
     \x20                with it and re-scores only the final rung + baseline on the oracle)"
        .to_string()
}

/// Prices the per-class costs of `config` for `dataset` at one rung
/// fidelity (rung shrink × class shrink), as a single-fingerprint cost
/// table. `exact` selects the tier: the cycle-level oracle (one simulation
/// per class) or the closed-form analytic estimate (no simulations).
fn class_costs(
    config: &ChipConfig,
    dataset: &str,
    rung_shrink: usize,
    exact: bool,
) -> (CostTable, String) {
    let mut costs = CostTable::new();
    let fingerprint = costs.register(config);
    for class_shrink in SERVE_SHRINKS {
        let a = sim_matrix_at_fidelity(dataset, rung_shrink * class_shrink);
        let cost = if exact {
            let mut chip = Accelerator::new(config.clone());
            let report = chip.run_spgemm(&a, &a).expect("simulation drains").report;
            let profile = WorkloadProfile::from_square(dataset, &a);
            ClassCost { cycles: report.total_cycles, flops: profile.flops() }
        } else {
            analytic_class_cost(config, &WorkloadFeatures::from_square(&a))
        };
        costs.insert(&fingerprint, RequestClass { dataset: 0, shrink: class_shrink }, cost);
    }
    (costs, fingerprint)
}

/// Scores an analytic cycle estimate on a report-backed objective without
/// a report: the same formulas as [`Objective::score`], fed by the
/// closed-form estimate instead of a simulation.
fn analytic_score(objective: Objective, config: &ChipConfig, cycles: f64) -> f64 {
    let seconds = cycles * config.seconds_per_cycle();
    let score = match objective {
        Objective::Cycles => cycles,
        Objective::EnergyDelay => {
            let power = PowerModel::calibrated().breakdown(config).total_power_w();
            power * seconds * seconds
        }
        Objective::Speedup => seconds,
        Objective::ServeP99 => unreachable!("serve-p99 runs through run_serve_p99"),
    };
    if score.is_finite() {
        score
    } else {
        f64::INFINITY
    }
}

/// The serve-p99 evaluator: every candidate serves the *same* reference
/// stream per fidelity — Poisson arrivals at ~80% of the paper-default
/// chip's capacity, ~2000 requests — on a single shard of its own silicon,
/// and is scored by the p99 latency of the replay. Queueing is part of the
/// score: a config that shaves service time also drains its queue sooner,
/// which is exactly the production trade-off single-kernel objectives miss.
fn run_serve_p99(
    tuner: &Tuner,
    runner: &Runner,
    dataset: &str,
    cost_model: CostModel,
) -> neura_lab::TuneOutcome {
    let baseline = tuner.spec().base.clone();
    // Reference-stream calibration follows the model's cheap tier (the
    // stream only sets arrivals and is identical for every candidate of a
    // rung, so the winner/baseline comparison stays fair either way).
    let exact_references = cost_model == CostModel::Cycle;
    let references: Vec<(usize, Vec<Request>)> = tuner
        .shrinks()
        .into_iter()
        .map(|rung_shrink| {
            let (costs, fingerprint) =
                class_costs(&baseline, dataset, rung_shrink, exact_references);
            let mean_service_s = SERVE_SHRINKS
                .iter()
                .map(|&s| {
                    costs.service_seconds(&fingerprint, RequestClass { dataset: 0, shrink: s }, 1)
                })
                .sum::<f64>()
                / SERVE_SHRINKS.len() as f64;
            let rps = (0.8 / mean_service_s).max(1.0).round();
            let duration_s = (2_000.0 / rps).clamp(1e-3, 2.0);
            let stream = StreamSpec {
                arrival: ArrivalProcess::Poisson,
                rps,
                duration_s,
                mix_size: 1,
                shrinks: SERVE_SHRINKS.to_vec(),
                seed: derive_seed(SERVE_SEED, &format!("tune/{dataset}/x{rung_shrink}")),
            }
            .generate();
            (rung_shrink, stream)
        })
        .collect();
    tuner.run_tiered(runner, |point, ctx| {
        let (_, stream) = references
            .iter()
            .find(|(s, _)| *s == ctx.shrink)
            .expect("every planned shrink has a reference stream");
        // Hybrid: analytic class costs on screening rungs, the cycle
        // oracle on the final rung and the baseline comparison.
        let exact = match cost_model {
            CostModel::Cycle => true,
            CostModel::Analytic => false,
            CostModel::Hybrid => ctx.is_final,
        };
        let (costs, _) = class_costs(&point.config, dataset, ctx.shrink, exact);
        let fleet = [ShardGroup::new("cand", point.config.clone(), 1)];
        let outcome =
            simulate_stream(stream, Policy::Fifo, &fleet, DispatchKind::LeastLoaded, None, &costs);
        let p99 = outcome.latency_percentile_s(99.0);
        Evaluation::scored(p99)
            .with_metric("p99_latency_ms", p99 * 1e3, "ms")
            .with_metric("mean_latency_ms", outcome.mean_latency_s() * 1e3, "ms")
            .with_metric("throughput_rps", outcome.throughput_rps(), "req/s")
            .with_metric("queue_depth_mean", outcome.queue_depth_mean, "req")
    })
}

fn main() {
    let mut datasets: Vec<String> = Vec::new();
    let mut objective = Objective::Cycles;
    let mut budget = usize::MAX;
    let mut cost_model = CostModel::default();
    let mut passthrough: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dataset" => {
                let name = args.next().unwrap_or_else(|| bad_usage("--dataset needs a value"));
                if DatasetCatalog::by_name(&name).is_none() {
                    bad_usage(&format!("dataset {name:?} is not in the catalog"));
                }
                datasets.push(name);
            }
            "--objective" => {
                let raw = args.next().unwrap_or_else(|| bad_usage("--objective needs a value"));
                objective = Objective::parse(&raw)
                    .unwrap_or_else(|| bad_usage(&format!("unknown objective {raw:?}")));
            }
            "--budget" => {
                let raw = args.next().unwrap_or_else(|| bad_usage("--budget needs a value"));
                budget = match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => bad_usage(&format!("--budget {raw:?} is not a positive integer")),
                };
            }
            "--cost-model" => {
                let raw = args.next().unwrap_or_else(|| bad_usage("--cost-model needs a value"));
                cost_model = CostModel::parse(&raw)
                    .unwrap_or_else(|| bad_usage(&format!("unknown cost model {raw:?}")));
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            // Only --json [PATH] is forwarded to the artifact session; any
            // other argument gets *this* binary's usage, not the session's.
            "--json" => {
                passthrough.push(arg);
                if matches!(args.peek(), Some(next) if !next.starts_with("--")) {
                    passthrough.push(args.next().expect("peeked"));
                }
            }
            other => bad_usage(&format!("unrecognised argument {other:?}")),
        }
    }
    if datasets.is_empty() {
        datasets = DatasetCatalog::spgemm_suite().iter().map(|d| d.name.to_string()).collect();
    }

    let mut session =
        ArtifactSession::from_arg_list("tune", neura_bench::scale_multiplier(), passthrough);
    let runner = Runner::from_env();

    let mut rows = Vec::new();
    for dataset in &datasets {
        let spec = TuneSpec::new("tune", ChipConfig::tile_16(), tune_grid(dataset), objective)
            .with_budget(budget);
        let tuner = Tuner::new(spec);

        let outcome = if objective == Objective::ServeP99 {
            run_serve_p99(&tuner, &runner, dataset, cost_model)
        } else if cost_model == CostModel::Cycle {
            // One workload per fidelity, generated up front so every rung
            // (and every thread) reuses the same deterministic matrix.
            let matrices: Vec<(usize, CsrMatrix)> = tuner
                .shrinks()
                .into_iter()
                .map(|shrink| (shrink, sim_matrix_at_fidelity(dataset, shrink)))
                .collect();
            tuner.run(&runner, |point, shrink| {
                let (_, a) = matrices
                    .iter()
                    .find(|(s, _)| *s == shrink)
                    .expect("every planned shrink has a matrix");
                let mut chip = Accelerator::new(point.config.clone());
                chip.run_spgemm(a, a).expect("simulation drains").report
            })
        } else {
            // Two-tier rungs: workload features are extracted once per
            // fidelity, then analytic screening prices each candidate in
            // nanoseconds. Under `hybrid`, the final rung (and the
            // baseline) re-score on the cycle oracle, so the reported
            // winner and its improvement factor are simulator-verified.
            let matrices: Vec<(usize, CsrMatrix)> = tuner
                .shrinks()
                .into_iter()
                .map(|shrink| (shrink, sim_matrix_at_fidelity(dataset, shrink)))
                .collect();
            let features: Vec<(usize, WorkloadFeatures)> = matrices
                .iter()
                .map(|(shrink, a)| (*shrink, WorkloadFeatures::from_square(a)))
                .collect();
            tuner.run_tiered(&runner, |point, ctx| {
                if cost_model == CostModel::Hybrid && ctx.is_final {
                    let (_, a) = matrices
                        .iter()
                        .find(|(s, _)| *s == ctx.shrink)
                        .expect("every planned shrink has a matrix");
                    let mut chip = Accelerator::new(point.config.clone());
                    let report = chip.run_spgemm(a, a).expect("simulation drains").report;
                    let score = objective.score(&point.config, &report);
                    Evaluation { score, report: Some(report), metrics: Vec::new() }
                } else {
                    let (_, workload) = features
                        .iter()
                        .find(|(s, _)| *s == ctx.shrink)
                        .expect("every planned shrink has features");
                    let cycles = AnalyticModel::calibrated().cycles(&point.config, workload);
                    Evaluation::scored(analytic_score(objective, &point.config, cycles))
                        .with_metric("analytic_cycles", cycles, "cycles")
                }
            })
        };

        // Serving tails are sub-millisecond at smoke scale: print them in
        // ms so the table stays legible at every fidelity.
        let (scale, digits) = if objective == Objective::ServeP99 { (1e3, 4) } else { (1.0, 3) };
        rows.push(vec![
            dataset.clone(),
            outcome.best.id.strip_prefix("tune/").unwrap_or(&outcome.best.id).to_string(),
            fmt(outcome.best_score * scale, digits),
            fmt(outcome.baseline_score * scale, digits),
            fmt(outcome.improvement_vs_default(), 3),
            outcome.rungs.len().to_string(),
            outcome.evaluations.to_string(),
        ]);
        session.extend(outcome.records().iter().cloned());
    }

    print_table(
        &format!("Auto-tuner: best ChipConfig per dataset (objective: {})", objective.name()),
        &[
            "Dataset",
            "Best configuration",
            &format!(
                "Best ({})",
                if objective == Objective::ServeP99 { "ms" } else { objective.unit() }
            ),
            "Paper default",
            "Improvement",
            "Rungs",
            "Sims",
        ],
        &rows,
    );
    println!(
        "\nSuccessive halving over a {}-point grid per dataset (MMH tile x HashPad x\n\
         cores/tile x router buffer x HBM preset); early rungs simulate shrunk\n\
         workloads, survivors graduate to full fidelity. The best configuration is\n\
         compared against the paper-default Tile-16 chip at equal fidelity and seed,\n\
         so it is never worse on the chosen objective.",
        tune_grid("cora").len(),
    );

    session.finish();
}

fn bad_usage(message: &str) -> ! {
    eprintln!("{message}\n{}", usage());
    std::process::exit(2);
}
