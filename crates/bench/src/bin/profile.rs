//! Chip-level profiling sweep: windowed cycle attribution and the stall
//! taxonomy from the cycle simulator, as a `neura_lab.profile/v1`
//! artifact.
//!
//! Runs one *profiled* cycle-level simulation per (dataset × tile × HBM
//! preset × shrink) cell — the accelerator's run loop feeds a
//! [`neura_chip::Profiler`] once per cycle — and emits, per cell, the
//! per-window busy/stall/idle split, the per-cause stall attribution
//! (operand fetch / HashPad full / NoC backpressure / dispatch
//! starvation), the exact NoC hop distribution and the DRAM-latency
//! percentiles. Every profile is checked against its conservation
//! invariants (taxonomy buckets sum to the stall cycles; busy + stall +
//! idle covers `cores × total_cycles` exactly), and the run is
//! thread-count invariant: `NEURA_LAB_THREADS=2` and `=8` produce byte
//! identical artifacts.
//!
//! Run with `cargo run --release -p neura_bench --bin profile` (add
//! `--json [path]` for the artifact). Flags:
//!
//! - `--dataset NAME` — restrict to one dataset (repeatable; default:
//!   the whole Table-1 SpGEMM suite, all 20 datasets)
//! - `--tile T` — profile on this tile size, `t4|t16|t64` (repeatable;
//!   default: pair each dataset with its size-matched tier — smallest
//!   third Tile-4, middle Tile-16, largest Tile-64)
//! - `--hbm P` — restrict to one HBM preset, `hbm2|hbm2-dual|ddr4`
//!   (repeatable; default: all three)
//! - `--shrink N` — workload shrink factor (repeatable; default: 1)
//! - `--window CYCLES` — profile window width (default: 1024)
//! - `--max-stall-frac F` — exit non-zero when any cell's *worst window*
//!   stalls more than fraction `F` of its core-cycles
//! - `--require-conservation` — exit non-zero on any conservation
//!   violation even at smoke scale (paper-scale runs always enforce it)
//!
//! The per-window attribution table prints for every cell when the sweep
//! has at most four cells, otherwise only for the most-stalled cell.

use neura_bench::{fmt, print_table, sim_matrix_at_fidelity};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::{ChipConfig, HbmPreset, TileSize};
use neura_chip::profile::{Profile, Profiler, StallCause, DEFAULT_WINDOW_CYCLES};
use neura_lab::{profile_records, Artifact, Runner, PROFILE_SCHEMA};
use neura_sparse::DatasetCatalog;
use std::path::PathBuf;

fn usage() -> String {
    format!(
        "usage: profile [--json [PATH]] [--dataset NAME]... [--tile T]... [--hbm P]...\n\
         \x20              [--shrink N]... [--window CYCLES] [--max-stall-frac F]\n\
         \x20              [--require-conservation]\n\
         \n\
         --json [PATH]          write a {PROFILE_SCHEMA} artifact (default:\n\
         \x20                      target/artifacts/profile.json)\n\
         --dataset NAME         profile this dataset (repeatable; default: the Table-1 suite)\n\
         --tile T               t4 | t16 | t64 (repeatable; default: size-matched tier)\n\
         --hbm P                hbm2 | hbm2-dual | ddr4 (repeatable; default: all three)\n\
         --shrink N             workload shrink factor (repeatable; default: 1)\n\
         --window CYCLES        profile window width in cycles (default: {DEFAULT_WINDOW_CYCLES})\n\
         --max-stall-frac F     fail when any cell's worst window stalls more than F\n\
         --require-conservation fail on any conservation violation at any scale"
    )
}

struct Args {
    datasets: Vec<String>,
    tiles: Vec<TileSize>,
    hbms: Vec<HbmPreset>,
    shrinks: Vec<usize>,
    window: u64,
    max_stall_frac: Option<f64>,
    require_conservation: bool,
    json_path: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        datasets: Vec::new(),
        tiles: Vec::new(),
        hbms: Vec::new(),
        shrinks: Vec::new(),
        window: DEFAULT_WINDOW_CYCLES,
        max_stall_frac: None,
        require_conservation: false,
        json_path: None,
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| bad_usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--dataset" => {
                let name = value("--dataset");
                if DatasetCatalog::by_name(&name).is_none() {
                    bad_usage(&format!("dataset {name:?} is not in the catalog"));
                }
                parsed.datasets.push(name);
            }
            "--tile" => {
                let raw = value("--tile");
                let tile = TileSize::ALL.into_iter().find(|t| t.label() == raw);
                parsed
                    .tiles
                    .push(tile.unwrap_or_else(|| bad_usage(&format!("unknown tile size {raw:?}"))));
            }
            "--hbm" => {
                let raw = value("--hbm");
                let preset = HbmPreset::ALL.into_iter().find(|p| p.name() == raw);
                parsed.hbms.push(
                    preset.unwrap_or_else(|| bad_usage(&format!("unknown HBM preset {raw:?}"))),
                );
            }
            "--shrink" => {
                let raw = value("--shrink");
                parsed.shrinks.push(match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => bad_usage(&format!("--shrink {raw:?} is not a positive integer")),
                });
            }
            "--window" => {
                let raw = value("--window");
                parsed.window = match raw.parse::<u64>() {
                    Ok(n) if n >= 1 => n,
                    _ => bad_usage(&format!("--window {raw:?} is not a positive cycle count")),
                };
            }
            "--max-stall-frac" => {
                let raw = value("--max-stall-frac");
                parsed.max_stall_frac = Some(match raw.parse::<f64>() {
                    Ok(f) if (0.0..=1.0).contains(&f) => f,
                    _ => bad_usage(&format!("--max-stall-frac {raw:?} is not a fraction in 0..=1")),
                });
            }
            "--require-conservation" => parsed.require_conservation = true,
            "--json" => {
                parsed.json_path = Some(match args.peek() {
                    Some(next) if !next.starts_with("--") => {
                        PathBuf::from(args.next().expect("peeked"))
                    }
                    _ => Artifact::default_path("profile"),
                });
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => bad_usage(&format!("unrecognised argument {other:?}")),
        }
    }
    if parsed.datasets.is_empty() {
        parsed.datasets =
            DatasetCatalog::spgemm_suite().iter().map(|d| d.name.to_string()).collect();
    }
    if parsed.hbms.is_empty() {
        parsed.hbms = HbmPreset::ALL.to_vec();
    }
    if parsed.shrinks.is_empty() {
        parsed.shrinks = vec![1];
    }
    parsed
}

/// One profiled point of the (dataset × tile × HBM × shrink) space.
#[derive(Debug, Clone)]
struct Cell {
    dataset: String,
    tile: TileSize,
    hbm: HbmPreset,
    shrink: usize,
}

impl Cell {
    fn config(&self) -> ChipConfig {
        ChipConfig::for_tile_size(self.tile).with_hbm_preset(self.hbm)
    }

    fn scope(&self) -> String {
        format!(
            "profile/{}/{}/{}/x{}",
            self.dataset,
            self.tile.label(),
            self.hbm.name(),
            self.shrink
        )
    }
}

fn main() {
    let args = parse_args();
    let scale_mult = neura_bench::scale_multiplier();
    let runner = Runner::from_env();

    let mut cells = Vec::new();
    for dataset in &args.datasets {
        let tiles = if args.tiles.is_empty() {
            vec![size_matched_tile(dataset)]
        } else {
            args.tiles.clone()
        };
        for &tile in &tiles {
            for &hbm in &args.hbms {
                for &shrink in &args.shrinks {
                    cells.push(Cell { dataset: dataset.clone(), tile, hbm, shrink });
                }
            }
        }
    }

    // One profiled cycle-level simulation per cell, fanned out on the lab
    // runner; the runner returns results in cell order, so the artifact
    // below is byte-identical across thread counts.
    let window = args.window;
    let profiles: Vec<Profile> = runner.run(&cells, move |_, cell: &Cell| {
        let a = sim_matrix_at_fidelity(&cell.dataset, cell.shrink);
        let mut chip = Accelerator::new(cell.config());
        let mut profiler = Profiler::new(window);
        chip.run_spgemm_profiled(&a, &a, Some(&mut profiler)).expect("simulation drains");
        profiler.into_profile()
    });

    let mut artifact = Artifact::new("profile", scale_mult).with_schema(PROFILE_SCHEMA);
    let mut violations: Vec<String> = Vec::new();
    let mut rows = Vec::new();
    for (cell, profile) in cells.iter().zip(&profiles) {
        if let Err(message) = profile.check_conservation() {
            violations.push(format!("{}: {message}", cell.scope()));
        }
        let mut records = profile_records(&cell.scope(), profile);
        records[0].params.push(("dataset".to_string(), cell.dataset.clone()));
        records[0].params.push(("tile".to_string(), cell.tile.label().to_string()));
        records[0].params.push(("hbm".to_string(), cell.hbm.name().to_string()));
        records[0].params.push(("shrink".to_string(), cell.shrink.to_string()));
        artifact.extend(records);

        let (worst, worst_frac) = profile.worst_window().unwrap_or((0, 0.0));
        rows.push(vec![
            cell.dataset.clone(),
            cell.tile.label().to_string(),
            cell.hbm.name().to_string(),
            profile.windows.len().to_string(),
            fmt(profile.stall_frac(), 4),
            worst.to_string(),
            fmt(worst_frac, 4),
            dominant_cause(profile).to_string(),
        ]);
    }

    print_table(
        "Chip profile: stall attribution per cell",
        &["Dataset", "Tile", "HBM", "Windows", "Stall frac", "Worst win", "Worst frac", "Dominant"],
        &rows,
    );

    // Per-window attribution: every cell for small sweeps, otherwise the
    // most-stalled cell only (paper-scale sweeps have dozens of cells).
    let detail: Vec<usize> = if cells.len() <= 4 {
        (0..cells.len()).collect()
    } else {
        let worst = (0..cells.len())
            .max_by(|&i, &j| {
                let fi = profiles[i].worst_window().map_or(0.0, |(_, f)| f);
                let fj = profiles[j].worst_window().map_or(0.0, |(_, f)| f);
                fi.partial_cmp(&fj).expect("stall fractions are finite")
            })
            .expect("at least one cell");
        vec![worst]
    };
    for &index in &detail {
        print_attribution(&cells[index], &profiles[index]);
    }

    println!(
        "\n{} cell(s) profiled with {}-cycle windows; stall causes attribute by the\n\
         dominant chip condition per cycle (HashPad full > NoC backpressure >\n\
         dispatch starvation > operand fetch), so buckets conserve exactly.",
        cells.len(),
        args.window,
    );

    if let Some(path) = &args.json_path {
        if let Err(e) = artifact.write(path) {
            eprintln!("profile: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("artifact: {}", path.display());
    }

    for violation in &violations {
        eprintln!("conservation violation: {violation}");
    }

    // Gates: conservation is always enforced at paper scale (and under
    // --require-conservation at any scale); --max-stall-frac bounds the
    // worst window of every cell.
    let mut failed = false;
    if !violations.is_empty() && (scale_mult <= 1 || args.require_conservation) {
        failed = true;
    }
    if let Some(bound) = args.max_stall_frac {
        for (cell, profile) in cells.iter().zip(&profiles) {
            let (worst, frac) = profile.worst_window().unwrap_or((0, 0.0));
            if frac > bound {
                eprintln!(
                    "stall bound exceeded: {} window {worst} stalls {} > {bound}",
                    cell.scope(),
                    fmt(frac, 4),
                );
                failed = true;
            }
        }
    }
    let conservation_label =
        if scale_mult <= 1 || args.require_conservation { "enforced" } else { "reported" };
    println!(
        "golden [{}]: conservation {} -> {}; stall bound {}",
        if scale_mult <= 1 { "strict" } else { "smoke" },
        conservation_label,
        if violations.is_empty() { "pass" } else { "FAIL" },
        match args.max_stall_frac {
            Some(bound) => format!("<= {bound} -> {}", if failed { "checked" } else { "pass" }),
            None => "not requested".to_string(),
        },
    );
    if failed {
        eprintln!("profile: invariant gates failed");
        std::process::exit(1);
    }
}

/// The cause carrying the most stall cycles over the whole run.
fn dominant_cause(profile: &Profile) -> &'static str {
    StallCause::ALL
        .into_iter()
        .max_by_key(|&cause| profile.stall_by_cause(cause))
        .expect("four causes")
        .name()
}

/// Prints the per-window attribution table for one cell: the busy/stall/
/// idle split and the share of each stall cause, window by window.
fn print_attribution(cell: &Cell, profile: &Profile) {
    let rows: Vec<Vec<String>> = profile
        .windows
        .iter()
        .enumerate()
        .map(|(w, window)| {
            let total = (window.busy + window.stall + window.idle).max(1) as f64;
            let mut row = vec![
                w.to_string(),
                window.start_cycle.to_string(),
                window.cycles.to_string(),
                fmt(window.busy as f64 / total, 3),
                fmt(window.stall as f64 / total, 3),
                fmt(window.idle as f64 / total, 3),
            ];
            for cause in StallCause::ALL {
                row.push(fmt(window.stall_by_cause(cause) as f64 / total, 3));
            }
            row.push(window.mmh_retired.to_string());
            row.push(window.hacc_retired.to_string());
            row
        })
        .collect();
    print_table(
        &format!("Per-window attribution: {}", cell.scope()),
        &[
            "Win", "Start", "Cycles", "Busy", "Stall", "Idle", "Fetch", "Pad", "NoC", "Disp",
            "MMH", "HACC",
        ],
        &rows,
    );
}

/// The chip tier a practitioner would deploy for a graph of this size:
/// terciles of the Table-1 suite by node count (same pairing as `xval`).
fn size_matched_tile(name: &str) -> TileSize {
    let dataset = DatasetCatalog::by_name(name).expect("validated at parse time");
    let mut nodes: Vec<_> = DatasetCatalog::spgemm_suite().iter().map(|d| d.nodes).collect();
    nodes.sort_unstable();
    let small = nodes[nodes.len().div_ceil(3) - 1];
    let mid = nodes[(2 * nodes.len()).div_ceil(3) - 1];
    if dataset.nodes <= small {
        TileSize::Tile4
    } else if dataset.nodes <= mid {
        TileSize::Tile16
    } else {
        TileSize::Tile64
    }
}

fn bad_usage(message: &str) -> ! {
    eprintln!("{message}\n{}", usage());
    std::process::exit(2);
}
