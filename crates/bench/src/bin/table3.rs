//! Tables 2 and 3 — per-component and whole-chip configuration parameters.
//!
//! Run with `cargo run --release -p neura_bench --bin table3` (add `--json
//! [path]` for a machine-readable artifact).

use neura_bench::{fmt, print_table};
use neura_chip::config::{ChipConfig, TileSize};
use neura_lab::{ArtifactSession, RunRecord};

fn main() {
    let mut session = ArtifactSession::from_args("table3", neura_bench::scale_multiplier());
    let configs: Vec<ChipConfig> =
        TileSize::ALL.iter().map(|t| ChipConfig::for_tile_size(*t)).collect();

    let component_rows = vec![
        row("Pipeline Registers", &configs, |c| c.core.pipeline_registers.to_string()),
        row("Pipelines", &configs, |c| c.core.pipelines.to_string()),
        row("Multipliers", &configs, |c| c.core.multipliers.to_string()),
        row("Addr. Generators", &configs, |c| c.core.address_generators.to_string()),
        row("Core Ports", &configs, |c| c.core.ports.to_string()),
        row("Comparators", &configs, |c| c.mem.comparators.to_string()),
        row("Hash-Engines", &configs, |c| c.mem.hash_engines.to_string()),
        row("Hashlines", &configs, |c| c.mem.hashlines.to_string()),
        row("Accumulators", &configs, |c| c.mem.accumulators.to_string()),
        row("Mem Ports", &configs, |c| c.mem.ports.to_string()),
    ];
    print_table(
        "Table 2: Individual component configuration",
        &["Element", "Tile-4", "Tile-16", "Tile-64"],
        &component_rows,
    );

    let chip_rows = vec![
        row("Tile Count", &configs, |c| c.tiles.to_string()),
        row("NeuraCores per tile", &configs, |c| c.cores_per_tile.to_string()),
        row("Total NeuraCores", &configs, |c| c.total_cores().to_string()),
        row("NeuraMems per tile", &configs, |c| c.mems_per_tile.to_string()),
        row("Total NeuraMems", &configs, |c| c.total_mems().to_string()),
        row("Memory Controllers", &configs, |c| c.tiles.to_string()),
        row("Total Routers", &configs, |c| c.total_routers().to_string()),
        row("Total Pipelines", &configs, |c| c.total_pipelines().to_string()),
        row("Register File (bits/pipeline)", &configs, |c| {
            c.register_file_bits_per_pipeline().to_string()
        }),
        row("Total Hash-Engines", &configs, |c| c.total_hash_engines().to_string()),
        row("Total TAG comparators", &configs, |c| c.total_comparators().to_string()),
        row("Total HashPad (MB)", &configs, |c| fmt(c.total_hashpad_mb(), 2)),
        row("Max frequency (GHz)", &configs, |c| fmt(c.frequency_ghz, 1)),
        row("Peak performance (GFLOPs)", &configs, |c| fmt(c.peak_gflops(), 0)),
        row("HBM bandwidth (GB/s)", &configs, |c| fmt(c.peak_bandwidth_gbps(), 0)),
    ];
    print_table(
        "Table 3: NeuraChip configuration",
        &["Parameter", "Tile-4", "Tile-16", "Tile-64"],
        &chip_rows,
    );

    for config in &configs {
        session.push(
            RunRecord::new(format!(
                "table3/{}",
                neura_lab::golden::slugify(config.tile_size.name())
            ))
            .param("tile", config.tile_size.name())
            .metric("tiles", config.tiles as f64)
            .metric("cores_per_tile", config.cores_per_tile as f64)
            .metric("total_cores", config.total_cores() as f64)
            .metric("total_mems", config.total_mems() as f64)
            .metric("total_routers", config.total_routers() as f64)
            .metric("total_pipelines", config.total_pipelines() as f64)
            .metric("pipelines_per_core", config.core.pipelines as f64)
            .metric("multipliers_per_core", config.core.multipliers as f64)
            .metric("hash_engines_per_mem", config.mem.hash_engines as f64)
            .metric("hashlines_per_mem", config.mem.hashlines as f64)
            .metric(
                "register_file_bits_per_pipeline",
                config.register_file_bits_per_pipeline() as f64,
            )
            .metric("total_hash_engines", config.total_hash_engines() as f64)
            .metric("total_comparators", config.total_comparators() as f64)
            .unit_metric("total_hashpad_mb", config.total_hashpad_mb(), "MB")
            .unit_metric("frequency_ghz", config.frequency_ghz, "GHz")
            .unit_metric("peak_gflops", config.peak_gflops(), "GFLOP/s")
            .unit_metric("hbm_bandwidth_gbps", config.peak_bandwidth_gbps(), "GB/s"),
        );
    }

    session.finish();
}

fn row(label: &str, configs: &[ChipConfig], f: impl Fn(&ChipConfig) -> String) -> Vec<String> {
    let mut cells = vec![label.to_string()];
    cells.extend(configs.iter().map(f));
    cells
}
