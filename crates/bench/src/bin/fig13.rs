//! Figures 12 and 13 — compute-mapping heat maps for four mapping schemes
//! across five sparse matrices and one dense matrix.
//!
//! For each (dataset, mapping) pair the harness maps every partial-product
//! tag of the SpGEMM onto the 32 NeuraMems of the Tile-16 configuration and
//! reports the per-unit workload distribution (max/mean ratio, coefficient of
//! variation and Gini coefficient).  Run with
//! `cargo run --release -p neura_bench --bin fig13`.

use neura_bench::{fmt, print_table, scaled_matrix};
use neura_chip::mapping::{workload_histogram, MappingKind};
use neura_sparse::gen::GraphGenerator;
use neura_sparse::stats::{gini, imbalance};
use neura_sparse::{CsrMatrix, DatasetCatalog};

const UNITS: usize = 32; // NeuraMems in the Tile-16 configuration

/// Builds, per processed column of `A` (a DRHM reseed boundary), the list of
/// output tags whose partial products that column generates.
fn tag_rows(a: &CsrMatrix) -> Vec<Vec<u64>> {
    let a_csc = a.to_csc();
    let cols = a.cols() as u64;
    (0..a.cols())
        .map(|k| {
            let (rows, _) = a_csc.col(k);
            let (b_cols, _) = a.row(k);
            let mut tags = Vec::with_capacity(rows.len() * b_cols.len());
            for &i in rows {
                for &j in b_cols {
                    tags.push(i as u64 * cols + j as u64);
                }
            }
            tags
        })
        .collect()
}

fn main() {
    let mut matrices: Vec<(String, CsrMatrix)> = DatasetCatalog::heatmap_suite()
        .iter()
        .map(|d| (d.name.to_string(), scaled_matrix(d, 64)))
        .collect();
    matrices.push(("dense-256".to_string(), GraphGenerator::dense(256, 9).generate().to_csr()));

    let mut rows = Vec::new();
    for (name, matrix) in &matrices {
        let tag_groups = tag_rows(matrix);
        for kind in MappingKind::ALL {
            let mut mapper = kind.build(UNITS, 0x1313);
            let histogram = workload_histogram(mapper.as_mut(), &tag_groups);
            let (max_over_mean, cv) = imbalance(&histogram);
            rows.push(vec![
                name.clone(),
                kind.name().to_string(),
                fmt(max_over_mean, 3),
                fmt(cv, 3),
                fmt(gini(&histogram), 3),
                histogram.iter().max().copied().unwrap_or(0).to_string(),
                fmt(histogram.iter().sum::<u64>() as f64 / UNITS as f64, 1),
            ]);
        }
    }
    print_table(
        "Figures 12/13: per-NeuraMem workload distribution under each compute mapping",
        &["Matrix", "Mapping", "Max/mean", "CV", "Gini", "Max work", "Mean work"],
        &rows,
    );
    println!(
        "\nThe paper's qualitative result: ring and modular hashing show hot spots\n\
         (high max/mean), the random table and DRHM are flat, and DRHM stays flat\n\
         even for the dense matrix."
    );
}
