//! Figures 12 and 13 — compute-mapping heat maps for four mapping schemes
//! across five sparse matrices and one dense matrix.
//!
//! For each (dataset, mapping) pair the harness maps every partial-product
//! tag of the SpGEMM onto the 32 NeuraMems of the Tile-16 configuration and
//! reports the per-unit workload distribution (max/mean ratio, coefficient
//! of variation and Gini coefficient). The (dataset × mapping) sweep is a
//! `neura_lab` experiment: matrices and tag groups are prepared once per
//! dataset on the parallel runner, then the 24 sweep points fan out over it.
//! Run with `cargo run --release -p neura_bench --bin fig13` (add `--json
//! [path]` for a machine-readable artifact).

use neura_bench::{fmt, print_table, scaled_matrix_by_name};
use neura_chip::config::ChipConfig;
use neura_chip::mapping::{workload_histogram, MappingKind};
use neura_lab::{ArtifactSession, ExperimentSpec, RunRecord, Runner, SweepGrid};
use neura_sparse::gen::GraphGenerator;
use neura_sparse::stats::{gini, imbalance};
use neura_sparse::{CsrMatrix, DatasetCatalog};

const UNITS: usize = 32; // NeuraMems in the Tile-16 configuration

/// Builds, per processed column of `A` (a DRHM reseed boundary), the list of
/// output tags whose partial products that column generates.
fn tag_rows(a: &CsrMatrix) -> Vec<Vec<u64>> {
    let a_csc = a.to_csc();
    let cols = a.cols() as u64;
    (0..a.cols())
        .map(|k| {
            let (rows, _) = a_csc.col(k);
            let (b_cols, _) = a.row(k);
            let mut tags = Vec::with_capacity(rows.len() * b_cols.len());
            for &i in rows {
                for &j in b_cols {
                    tags.push(i as u64 * cols + j as u64);
                }
            }
            tags
        })
        .collect()
}

fn main() {
    let mut session = ArtifactSession::from_args("fig13", neura_bench::scale_multiplier());
    let runner = Runner::from_env();

    let mut names: Vec<String> =
        DatasetCatalog::heatmap_suite().iter().map(|d| d.name.to_string()).collect();
    names.push("dense-256".to_string());

    // Phase 1: per-dataset preparation (matrix generation + tag grouping),
    // parallel over datasets.
    let tag_groups: Vec<Vec<Vec<u64>>> = runner.run(&names, |_, name| {
        let matrix = if name == "dense-256" {
            GraphGenerator::dense(256, 9).generate().to_csr()
        } else {
            scaled_matrix_by_name(name, 64)
        };
        tag_rows(&matrix)
    });

    // Phase 2: the (dataset × mapping) sweep over the prepared tag groups.
    let spec = ExperimentSpec::new(
        "fig13",
        ChipConfig::tile_16(),
        SweepGrid::new().datasets(names.iter().cloned()).mappings(MappingKind::ALL),
    );
    let results = runner.run_spec(&spec, |point| {
        let dataset = point.dataset.as_deref().expect("grid has a dataset axis");
        let index = names.iter().position(|n| n == dataset).expect("dataset prepared");
        let mut mapper = point.config.mapping.build(UNITS, point.config.seed);
        let histogram = workload_histogram(mapper.as_mut(), &tag_groups[index]);
        let (max_over_mean, cv) = imbalance(&histogram);
        let max_work = histogram.iter().max().copied().unwrap_or(0);
        let mean_work = histogram.iter().sum::<u64>() as f64 / UNITS as f64;
        (max_over_mean, cv, gini(&histogram), max_work, mean_work)
    });

    let mut rows = Vec::new();
    for (point, (max_over_mean, cv, gini_coeff, max_work, mean_work)) in &results {
        rows.push(vec![
            point.dataset.clone().expect("dataset axis"),
            point.config.mapping.name().to_string(),
            fmt(*max_over_mean, 3),
            fmt(*cv, 3),
            fmt(*gini_coeff, 3),
            max_work.to_string(),
            fmt(*mean_work, 1),
        ]);
        let mut record = RunRecord::new(&point.id)
            .metric("max_over_mean", *max_over_mean)
            .metric("cv", *cv)
            .metric("gini", *gini_coeff)
            .metric("max_work", *max_work as f64)
            .metric("mean_work", *mean_work);
        record.params = point.params();
        session.push(record);
    }
    print_table(
        "Figures 12/13: per-NeuraMem workload distribution under each compute mapping",
        &["Matrix", "Mapping", "Max/mean", "CV", "Gini", "Max work", "Mean work"],
        &rows,
    );
    println!(
        "\nThe paper's qualitative result: ring and modular hashing show hot spots\n\
         (high max/mean), the random table and DRHM are flat, and DRHM stays flat\n\
         even for the dense matrix."
    );

    session.finish();
}
