//! Timeline summariser/asserter: reads a `neura_lab.timeline/v1`
//! artifact (as `serve --trace` writes) and prints one row per traced
//! scenario — window count and width, the worst window's p99 and when it
//! happened, the run-aggregate p99, crash-recovery accounting and the
//! worst windowed SLO attainment — so the *dynamics* of a run (the flash
//! crowd's spike window, the time to recover after a crash, a tenant
//! squeezed mid-run) become numbers a CI gate can hold. Run with
//! `cargo run --release -p neura_bench --bin timeline -- [PATH]`. Flags:
//!
//! - `PATH` — the timeline artifact (default
//!   `target/artifacts/timeline.json`)
//! - `--scope PREFIX` — only scenarios whose scope starts with `PREFIX`
//! - `--max-worst-p99-ms X` — exit 1 when any scenario's worst-window
//!   p99 exceeds `X` ms
//! - `--max-recovery-ms X` — exit 1 when any scenario's mean crash
//!   recovery exceeds `X` ms
//! - `--min-window-slo F` — exit 1 when any tenant's windowed SLO
//!   attainment dips below `F` in any window with completions
//!
//! Independent of the flags, the invariant `worst-window p99 >=
//! aggregate p99` is checked for every scenario (both sides come from
//! the same merged histograms, so by pigeonhole the maximum over windows
//! can never undercut the aggregate); a violation means a corrupt
//! artifact and exits 1.

use std::path::PathBuf;
use std::process::ExitCode;

use neura_bench::{fmt, print_table};
use neura_lab::trend::load_artifact;
use neura_lab::{Artifact, RunRecord, TIMELINE_SCHEMA};

fn usage() -> String {
    "usage: timeline [PATH] [--scope PREFIX] [--max-worst-p99-ms X] [--max-recovery-ms X]\n\
     \x20               [--min-window-slo F]\n\
     \n\
     PATH                 timeline artifact (default: target/artifacts/timeline.json)\n\
     --scope PREFIX       only scenarios whose scope starts with PREFIX\n\
     --max-worst-p99-ms X fail when a worst-window p99 exceeds X ms\n\
     --max-recovery-ms X  fail when a mean crash recovery exceeds X ms\n\
     --min-window-slo F   fail when a tenant's windowed SLO attainment dips below F"
        .to_string()
}

/// One traced scenario's digest, pulled from its `{scope}/timeline`
/// summary record and `{scope}/window/NNN` window records.
struct ScopeSummary {
    scope: String,
    windows: f64,
    window_ms: f64,
    worst_window: f64,
    worst_start_ms: f64,
    worst_p99_ms: f64,
    aggregate_p99_ms: f64,
    recoveries: f64,
    recovery_ms: f64,
    /// The lowest windowed SLO attainment over (tenant, window) pairs
    /// with completions, with the tenant metric it came from.
    min_slo: Option<(String, f64)>,
}

fn summarise(artifact: &Artifact, scope_filter: Option<&str>) -> Vec<ScopeSummary> {
    let metric = |record: &RunRecord, name: &str| -> f64 {
        record.metric_value(name).unwrap_or_else(|| {
            eprintln!("{}: missing metric {name:?}", record.id);
            std::process::exit(1);
        })
    };
    artifact
        .records
        .iter()
        .filter_map(|record| {
            let scope = record.id.strip_suffix("/timeline")?;
            if let Some(prefix) = scope_filter {
                if !scope.starts_with(prefix) {
                    return None;
                }
            }
            // A windowed SLO metric only counts when the window actually
            // completed requests for the tenant: an idle window reports
            // attainment 1.0 by convention, and a window where a tenant
            // served nothing says nothing about its SLO.
            let window_prefix = format!("{scope}/window/");
            let mut min_slo: Option<(String, f64)> = None;
            for window in artifact.records.iter().filter(|r| r.id.starts_with(&window_prefix)) {
                for m in &window.metrics {
                    let Some(tenant) = m.name.strip_prefix("slo_") else { continue };
                    let served = window.metric_value(&format!("rps_{tenant}")).unwrap_or(0.0);
                    if served <= 0.0 {
                        continue;
                    }
                    if min_slo.as_ref().is_none_or(|(_, best)| m.value < *best) {
                        min_slo = Some((m.name.clone(), m.value));
                    }
                }
            }
            Some(ScopeSummary {
                scope: scope.to_string(),
                windows: metric(record, "windows"),
                window_ms: metric(record, "window_ms"),
                worst_window: metric(record, "worst_window"),
                worst_start_ms: metric(record, "worst_window_start_ms"),
                worst_p99_ms: metric(record, "worst_window_p99_ms"),
                aggregate_p99_ms: metric(record, "aggregate_p99_ms"),
                recoveries: metric(record, "recoveries"),
                recovery_ms: metric(record, "recovery_time_ms"),
                min_slo,
            })
        })
        .collect()
}

fn main() -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut scope_filter: Option<String> = None;
    let mut max_worst_p99_ms: Option<f64> = None;
    let mut max_recovery_ms: Option<f64> = None;
    let mut min_window_slo: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> f64 {
            let raw = args.next().unwrap_or_else(|| bad_usage(&format!("{flag} needs a value")));
            match raw.parse::<f64>() {
                Ok(v) if v.is_finite() && v >= 0.0 => v,
                _ => bad_usage(&format!("{flag} {raw:?} is not a non-negative number")),
            }
        };
        match arg.as_str() {
            "--scope" => {
                scope_filter =
                    Some(args.next().unwrap_or_else(|| bad_usage("--scope needs a value")));
            }
            "--max-worst-p99-ms" => max_worst_p99_ms = Some(value("--max-worst-p99-ms")),
            "--max-recovery-ms" => max_recovery_ms = Some(value("--max-recovery-ms")),
            "--min-window-slo" => min_window_slo = Some(value("--min-window-slo")),
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                bad_usage(&format!("unrecognised argument {other:?}"))
            }
            _ if path.is_none() => path = Some(PathBuf::from(arg)),
            other => bad_usage(&format!("unexpected extra path {other:?}")),
        }
    }
    let path = path.unwrap_or_else(|| Artifact::default_path("timeline"));

    let artifact = match load_artifact(&path) {
        Ok(artifact) => artifact,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if artifact.schema != TIMELINE_SCHEMA {
        eprintln!(
            "{}: schema {:?} is not a timeline artifact (expected {TIMELINE_SCHEMA:?}); \
             produce one with `serve --trace`",
            path.display(),
            artifact.schema
        );
        return ExitCode::FAILURE;
    }

    let summaries = summarise(&artifact, scope_filter.as_deref());
    if summaries.is_empty() {
        eprintln!("{}: no {{scope}}/timeline records match", path.display());
        return ExitCode::FAILURE;
    }

    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                s.scope.strip_prefix("serve/").unwrap_or(&s.scope).to_string(),
                format!("{}", s.windows as u64),
                fmt(s.window_ms, 4),
                format!("#{} @{}ms", s.worst_window as u64, fmt(s.worst_start_ms, 3)),
                fmt(s.worst_p99_ms, 4),
                fmt(s.aggregate_p99_ms, 4),
                format!("{}", s.recoveries as u64),
                fmt(s.recovery_ms, 3),
                s.min_slo.as_ref().map_or_else(|| "-".to_string(), |(_, v)| fmt(*v, 3)),
            ]
        })
        .collect();
    print_table(
        &format!("Timeline: {} traced scenario(s) in {}", summaries.len(), path.display()),
        &[
            "Scenario",
            "Windows",
            "Win (ms)",
            "Worst win",
            "Worst p99 (ms)",
            "Agg p99 (ms)",
            "Recov",
            "Recov (ms)",
            "Min SLO",
        ],
        &rows,
    );

    let mut failures: Vec<String> = Vec::new();
    for s in &summaries {
        if s.worst_p99_ms < s.aggregate_p99_ms {
            failures.push(format!(
                "{}: worst-window p99 {} ms undercut the aggregate p99 {} ms — the artifact \
                 violates the windowing invariant",
                s.scope,
                fmt(s.worst_p99_ms, 4),
                fmt(s.aggregate_p99_ms, 4)
            ));
        }
        if let Some(limit) = max_worst_p99_ms {
            if s.worst_p99_ms > limit {
                failures.push(format!(
                    "{}: worst-window p99 {} ms exceeds --max-worst-p99-ms {limit}",
                    s.scope,
                    fmt(s.worst_p99_ms, 4)
                ));
            }
        }
        if let Some(limit) = max_recovery_ms {
            if s.recovery_ms > limit {
                failures.push(format!(
                    "{}: mean crash recovery {} ms exceeds --max-recovery-ms {limit}",
                    s.scope,
                    fmt(s.recovery_ms, 3)
                ));
            }
        }
        if let (Some(floor), Some((metric, worst))) = (min_window_slo, s.min_slo.as_ref()) {
            if *worst < floor {
                failures.push(format!(
                    "{}: windowed {metric} dipped to {} below --min-window-slo {floor}",
                    s.scope,
                    fmt(*worst, 3)
                ));
            }
        }
    }
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("timeline: {failure}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn bad_usage(message: &str) -> ! {
    eprintln!("{message}\n{}", usage());
    std::process::exit(2);
}
