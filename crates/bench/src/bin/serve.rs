//! Request-stream serving simulation: open-loop arrival streams, batching
//! policies and multi-chip sharding over the cycle-level NeuraChip model
//! (see `neura_serve`). Run with
//! `cargo run --release -p neura_bench --bin serve` (add `--json [path]`
//! for a machine-readable artifact). Flags:
//!
//! - `--arrival poisson|bursty` — arrival process (repeatable; default
//!   `poisson`)
//! - `--rps X` — mean arrival rate in requests/second (repeatable; default:
//!   auto-calibrated to ~80% offered load on one shard, so queueing is
//!   visible at every scale multiplier)
//! - `--policy fifo|sjf|batch` — scheduling/batching policy (repeatable;
//!   default: all three)
//! - `--shards N` — accelerator shard count (repeatable; default 1, 2, 4)
//! - `--duration SECONDS` — simulated stream duration (default 2.0,
//!   shortened at the auto rate so streams stay ~20k requests)
//! - `--dataset NAME` — serving-mix dataset (repeatable; default cora,
//!   wiki-Vote, facebook)
//! - `--max-batch N` / `--batch-timeout-ms X` — knobs of the `batch` policy
//!   (the timeout defaults to 20x the mean service time)
//!
//! The sweep replays every (arrival, rps) stream once per policy/shard arm
//! (arms share the stream seed), charges each dispatched batch a memoised
//! cycle cost simulated once per request class on the Tile-16 chip, and
//! reports p50/p95/p99 latency, sustained throughput, queue depth and
//! per-shard utilisation per scenario.

use neura_baselines::workload::WorkloadProfile;
use neura_bench::{fmt, print_table, sim_matrix_at_fidelity};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::ChipConfig;
use neura_lab::{ArtifactSession, RunRecord, Runner};
use neura_serve::policy::{DEFAULT_BATCH_TIMEOUT_S, DEFAULT_MAX_BATCH};
use neura_serve::{
    simulate, ArrivalProcess, ClassCost, CostTable, Policy, RequestClass, ServeSweep,
};
use neura_sparse::DatasetCatalog;

/// Per-request workload shrink classes: a request queries the full
/// simulator workload of its dataset, half of it, or a quarter.
const REQUEST_SHRINKS: [usize; 3] = [1, 2, 4];

/// Base seed of every stream (scenario seeds derive from it).
const STREAM_SEED: u64 = 0x5EED_CAFE;

fn usage() -> String {
    "usage: serve [--json [PATH]] [--arrival A]... [--rps X]... [--policy P]... [--shards N]...\n\
     \x20            [--duration S] [--dataset NAME]... [--max-batch N] [--batch-timeout-ms X]\n\
     \n\
     --json [PATH]         write a machine-readable artifact (default: target/artifacts/serve.json)\n\
     --arrival A           poisson | bursty (repeatable; default: poisson)\n\
     --rps X               mean arrival rate in requests/second (repeatable; default: auto,\n\
     \x20                    ~80% offered load on a single shard)\n\
     --policy P            fifo | sjf | batch (repeatable; default: fifo, sjf, batch)\n\
     --shards N            accelerator shard count (repeatable; default: 1, 2, 4)\n\
     --duration S          simulated stream duration in seconds (default: 2.0, shortened\n\
     \x20                    at the auto rate so streams stay ~20k requests)\n\
     --dataset NAME        serving-mix dataset (repeatable; default: cora, wiki-Vote, facebook)\n\
     --max-batch N         batch policy: largest batch size (default: 8)\n\
     --batch-timeout-ms X  batch policy: partial-batch flush timeout (default: 20x the\n\
     \x20                    mean service time)"
        .to_string()
}

fn main() {
    let mut arrivals: Vec<ArrivalProcess> = Vec::new();
    let mut rps: Vec<f64> = Vec::new();
    let mut policy_names: Vec<String> = Vec::new();
    let mut shards: Vec<usize> = Vec::new();
    let mut duration_s = 2.0f64;
    let mut duration_given = false;
    let mut mix: Vec<String> = Vec::new();
    let mut max_batch = DEFAULT_MAX_BATCH;
    let mut batch_timeout_s = DEFAULT_BATCH_TIMEOUT_S;
    let mut batch_timeout_given = false;
    let mut passthrough: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--arrival" => {
                let raw = args.next().unwrap_or_else(|| bad_usage("--arrival needs a value"));
                arrivals.push(
                    ArrivalProcess::parse(&raw)
                        .unwrap_or_else(|| bad_usage(&format!("unknown arrival process {raw:?}"))),
                );
            }
            "--rps" => {
                let raw = args.next().unwrap_or_else(|| bad_usage("--rps needs a value"));
                rps.push(match raw.parse::<f64>() {
                    Ok(r) if r.is_finite() && r > 0.0 => r,
                    _ => bad_usage(&format!("--rps {raw:?} is not a positive rate")),
                });
            }
            "--policy" => {
                let raw = args.next().unwrap_or_else(|| bad_usage("--policy needs a value"));
                if Policy::parse(&raw).is_none() {
                    bad_usage(&format!("unknown policy {raw:?}"));
                }
                policy_names.push(raw);
            }
            "--shards" => {
                let raw = args.next().unwrap_or_else(|| bad_usage("--shards needs a value"));
                shards.push(match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => bad_usage(&format!("--shards {raw:?} is not a positive integer")),
                });
            }
            "--duration" => {
                let raw = args.next().unwrap_or_else(|| bad_usage("--duration needs a value"));
                duration_s = match raw.parse::<f64>() {
                    Ok(d) if d.is_finite() && d > 0.0 => d,
                    _ => bad_usage(&format!("--duration {raw:?} is not a positive duration")),
                };
                duration_given = true;
            }
            "--dataset" => {
                let name = args.next().unwrap_or_else(|| bad_usage("--dataset needs a value"));
                if DatasetCatalog::by_name(&name).is_none() {
                    bad_usage(&format!("dataset {name:?} is not in the catalog"));
                }
                mix.push(name);
            }
            "--max-batch" => {
                let raw = args.next().unwrap_or_else(|| bad_usage("--max-batch needs a value"));
                max_batch = match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => bad_usage(&format!("--max-batch {raw:?} is not a positive integer")),
                };
            }
            "--batch-timeout-ms" => {
                let raw =
                    args.next().unwrap_or_else(|| bad_usage("--batch-timeout-ms needs a value"));
                batch_timeout_s = match raw.parse::<f64>() {
                    Ok(t) if t.is_finite() && t >= 0.0 => t / 1e3,
                    _ => bad_usage(&format!("--batch-timeout-ms {raw:?} is not a timeout")),
                };
                batch_timeout_given = true;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            // Only --json [PATH] is forwarded to the artifact session.
            "--json" => {
                passthrough.push(arg);
                if matches!(args.peek(), Some(next) if !next.starts_with("--")) {
                    passthrough.push(args.next().expect("peeked"));
                }
            }
            other => bad_usage(&format!("unrecognised argument {other:?}")),
        }
    }
    if mix.is_empty() {
        mix = vec!["cora".to_string(), "wiki-Vote".to_string(), "facebook".to_string()];
    }
    let mut session =
        ArtifactSession::from_arg_list("serve", neura_bench::scale_multiplier(), passthrough);
    let runner = Runner::from_env();
    let config = ChipConfig::tile_16();

    // Memoise the cycle cost of one request per class (dataset of the mix ×
    // request shrink) — one cycle-level simulation each, fanned out on the
    // lab runner; every scenario then replays against this shared table.
    let classes: Vec<RequestClass> = mix
        .iter()
        .enumerate()
        .flat_map(|(dataset, _)| REQUEST_SHRINKS.map(|shrink| RequestClass { dataset, shrink }))
        .collect();
    let measured = runner.run(&classes, |_, class| {
        let a = sim_matrix_at_fidelity(&mix[class.dataset], class.shrink);
        let mut chip = Accelerator::new(config.clone());
        let report = chip.run_spgemm(&a, &a).expect("simulation drains").report;
        let profile = WorkloadProfile::from_square(&mix[class.dataset], &a);
        ClassCost { cycles: report.total_cycles, flops: profile.flops() }
    });
    let mut costs = CostTable::for_config(&config);
    for (class, cost) in classes.iter().zip(&measured) {
        costs.insert(*class, *cost);
    }
    for (class, cost) in classes.iter().zip(&measured) {
        let service_ms = costs.service_seconds(*class, 1) * 1e3;
        let mut record =
            RunRecord::new(format!("serve/cost/{}/x{}", mix[class.dataset], class.shrink))
                .unit_metric("cycles", cost.cycles as f64, "cycles")
                .unit_metric("service_ms", service_ms, "ms")
                .metric("flops", cost.flops as f64);
        record.params.push(("dataset".to_string(), mix[class.dataset].clone()));
        record.params.push(("shrink".to_string(), class.shrink.to_string()));
        session.push(record);
    }

    // Absolute request rates mean nothing across scale multipliers (a smoke
    // run's requests are thousands of times cheaper than paper-scale ones),
    // so the default arrival rate auto-calibrates to ~80% offered load on a
    // single shard — high enough that queueing, policy differences and
    // shard scaling are visible at every scale. Derived from the memoised
    // cycle costs, so it stays a pure function of the inputs.
    let mean_service_s =
        classes.iter().map(|c| costs.service_seconds(*c, 1)).sum::<f64>() / classes.len() as f64;
    // The fixed-wall-clock batch timeout gets the same treatment: 20x the
    // mean service time leaves room for same-class arrivals to accumulate
    // without letting the flush deadline dwarf the service cost itself.
    if !batch_timeout_given {
        batch_timeout_s = mean_service_s * 20.0;
    }
    let policies: Vec<Policy> = if policy_names.is_empty() {
        vec![Policy::Fifo, Policy::Sjf, Policy::batch(max_batch, batch_timeout_s)]
    } else {
        policy_names
            .iter()
            .map(|name| match Policy::parse(name).expect("validated at parse time") {
                Policy::BatchByDataset { .. } => Policy::batch(max_batch, batch_timeout_s),
                other => other,
            })
            .collect()
    };
    if rps.is_empty() {
        let auto_rps = (0.8 / mean_service_s).max(1.0).round();
        // Keep auto-rated streams to ~20k requests so smoke runs (where a
        // request costs microseconds and the rate lands in the millions)
        // stay fast; an explicit --duration wins.
        if !duration_given {
            duration_s = f64::min(duration_s, (20_000.0 / auto_rps).max(1e-3));
        }
        println!(
            "auto arrival rate: {auto_rps} req/s (~80% of one shard's {:.4} ms mean service), \
             duration {duration_s:.4} s",
            mean_service_s * 1e3,
        );
        rps.push(auto_rps);
    }
    let sweep = ServeSweep::new()
        .arrivals(if arrivals.is_empty() { vec![ArrivalProcess::Poisson] } else { arrivals })
        .rps(rps)
        .policies(policies)
        .shards(if shards.is_empty() { vec![1, 2, 4] } else { shards });

    // Replay every scenario on the runner; results collect in sweep order,
    // so the artifact is byte-identical for any NEURA_LAB_THREADS.
    let scenarios = sweep.scenarios("serve", STREAM_SEED);
    let outcomes = runner.run(&scenarios, |_, scenario| {
        let stream = scenario.stream_spec(duration_s, mix.len(), &REQUEST_SHRINKS).generate();
        simulate(&stream, scenario.policy, scenario.shards, &costs)
    });

    let mut rows = Vec::new();
    for (scenario, outcome) in scenarios.iter().zip(&outcomes) {
        let mean_util = outcome.utilisations().iter().sum::<f64>() / scenario.shards as f64;
        let tails = outcome.latency_percentiles_s(&[50.0, 95.0, 99.0]);
        rows.push(vec![
            scenario.id.strip_prefix("serve/").unwrap_or(&scenario.id).to_string(),
            outcome.requests().to_string(),
            fmt(tails[0] * 1e3, 3),
            fmt(tails[1] * 1e3, 3),
            fmt(tails[2] * 1e3, 3),
            fmt(outcome.throughput_rps(), 1),
            fmt(mean_util, 3),
            outcome.batch_sizes.len().to_string(),
            fmt(outcome.mean_batch_size(), 2),
        ]);
        let mut params = scenario.params();
        params.push(("mix".to_string(), mix.join("+")));
        params.push(("duration_s".to_string(), format!("{duration_s:?}")));
        session.extend(outcome.records(&scenario.id, &params));
    }

    print_table(
        "Serving scenarios: tail latency and throughput under load",
        &[
            "Scenario",
            "Requests",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "Thr (req/s)",
            "Util",
            "Batches",
            "Mean batch",
        ],
        &rows,
    );
    println!(
        "\nEach scenario replays a deterministic {}-dataset request stream on a fleet\n\
         of simulated Tile-16 chips: batches dispatch to the least-loaded idle shard\n\
         and are charged a cycle cost memoised per (dataset x request size) class\n\
         ({} cycle-level simulations total). Policy and shard arms of the same\n\
         arrival/rate stream share their seed, so they are directly comparable.",
        mix.len(),
        classes.len(),
    );

    session.finish();
}

fn bad_usage(message: &str) -> ! {
    eprintln!("{message}\n{}", usage());
    std::process::exit(2);
}
