//! Request-stream serving simulation: open- and closed-loop workloads,
//! batching policies, heterogeneous multi-chip sharding with class-aware
//! dispatch and an autoscaled arm, over the cycle-level NeuraChip model
//! (see `neura_serve`). Run with
//! `cargo run --release -p neura_bench --bin serve` (add `--json [path]`
//! for a machine-readable artifact). Flags:
//!
//! - `--arrival poisson|bursty` — arrival process (repeatable; default
//!   `poisson`)
//! - `--rps X` — mean arrival rate in requests/second (repeatable; default:
//!   auto-calibrated to ~80% offered load on one reference shard, so
//!   queueing is visible at every scale multiplier)
//! - `--policy fifo|sjf|batch` — scheduling/batching policy (repeatable;
//!   default: all three)
//! - `--shards N` — homogeneous Tile-16 fleet of N shards (repeatable;
//!   default fleets: 1, 2 and 4 Tile-16 shards)
//! - `--fleet SPEC` — fleet mix like `t16x4` or `t64x1+t4x4` (repeatable)
//! - `--dispatch least-loaded|affinity|cost` — dispatch policy
//!   (repeatable; default `least-loaded`)
//! - `--clients N` — add a closed-loop arm with N clients (repeatable)
//! - `--think-ms X` — closed-loop mean think time (default: derived from
//!   the memoised costs for ~80% offered load)
//! - `--autoscale MIN:MAX` — autoscale every scenario between MIN and MAX
//!   shards per group; `--provision-ms X` / `--check-ms X` tune the
//!   controller (defaults derived from the mean service time)
//! - `--duration SECONDS` — simulated horizon (default 2.0, shortened at
//!   the auto rate so streams stay ~20k requests)
//! - `--dataset NAME` — serving-mix dataset (repeatable; default cora,
//!   wiki-Vote, facebook)
//! - `--max-batch N` / `--batch-timeout-ms X` — knobs of the `batch` policy
//!   (the timeout defaults to 20x the mean service time)
//! - `--scenario NAME` — run a named library scenario arm (repeatable;
//!   `all` = the whole library; without the flag the whole library rides
//!   along with the default arms)
//! - `--queue-bound N` — bound every plain arm's backlog; arrivals beyond
//!   it are shed and accounted
//! - `--tenant SPEC` — a `name:weight[:limit_rps[:slo_ms]]` tenant
//!   (repeatable; wraps the plain open arms in a multi-tenant mix with
//!   token-bucket rate limits and per-tenant SLO attainment)
//! - `--fault SPEC` — a fault regime like `crash2+pf0.5+deg0x3.0` injected
//!   into the plain arms (seed-derived crash times, provisioning failure
//!   probability, degraded-group service multipliers)
//! - `--trace [PATH]` — record every scenario's request lifecycle and
//!   emit a windowed `neura_lab.timeline/v1` artifact beside the run
//!   artifact (default `target/artifacts/timeline.json`); `--window-ms X`
//!   fixes the window width (default: 1/50th of the horizon)
//! - `--profile [PATH]` — attach the chip profiler to the per-class cost
//!   simulations (cycle cost model only) and emit one
//!   `neura_lab.profile/v1` profile per (chip fingerprint, request class)
//!   beside the run artifact (default `target/artifacts/serve-profile.json`)
//! - `--epochs N` / `--epoch-ms X` — run every scenario replay through the
//!   parallel-in-time engine (`neura_serve::engine`): the timeline splits
//!   into N equal epochs (or epochs of X simulated milliseconds) whose
//!   fragments replay concurrently and merge at the boundaries; the merged
//!   artifact is byte-identical to the serial replay
//! - `--lanes L` — split eligible closed-loop scenarios into L independent
//!   client/shard lanes that replay concurrently (a *scenario parameter*:
//!   results are thread-count invariant at a fixed lane count)
//! - `--no-meta` — suppress the wall-clock/engine meta fields in the
//!   artifact, so byte-comparison across thread counts stays exact
//! - `--speedup` — after the sweep, replay one large closed-loop lane
//!   scenario twice (single-threaded, then on the full pool), assert the
//!   outcomes identical and report the measured speedup
//!
//! Without fleet/dispatch/clients/autoscale flags, three comparison arms
//! ride along with the classic shard-scaling sweep: a heterogeneous
//! Tile-64+Tile-4 fleet against a homogeneous equal-shard Tile-16 fleet
//! under all three dispatch policies, a closed-loop arm directly
//! comparable to its open-loop twin, and an autoscaled arm reporting
//! shard-seconds cost against the p99 it buys — plus every scenario of
//! [`ScenarioSpec::library`] as a named `scn-*` arm on a two-shard Tile-16
//! fleet, its rate calibrated to `load x fleet capacity` (diurnal and
//! flash-crowd waves, a 3x overload against a bounded queue, a
//! rate-limited tenant mix, shard crashes recovering through the
//! autoscaler, and degraded silicon under flaky provisioning). Cycle
//! costs are memoised once per (chip fingerprint, request class) — groups
//! sharing silicon share the memo — and every serving arm of a workload
//! replays the identical demand.

use neura_baselines::workload::WorkloadProfile;
use neura_bench::{fmt, print_table, sim_matrix_at_fidelity};
use neura_chip::accelerator::Accelerator;
use neura_chip::analytic::WorkloadFeatures;
use neura_chip::config::{ChipConfig, TileSize};
use neura_chip::profile::{Profile, Profiler, DEFAULT_WINDOW_CYCLES};
use neura_lab::spec::derive_seed;
use neura_lab::{
    profile_records, Artifact, ArtifactSession, RunRecord, Runner, PROFILE_SCHEMA, TIMELINE_SCHEMA,
};
use neura_serve::cost::{analytic_class_cost, hybrid_scaled_cycles, CostModel};
use neura_serve::policy::{DEFAULT_BATCH_TIMEOUT_S, DEFAULT_MAX_BATCH};
use neura_serve::{
    simulate_config_parallel, simulate_config_traced_parallel, ArrivalProcess, AutoscalePolicy,
    ClassCost, ClosedLoopSpec, CostTable, DispatchKind, EnginePlan, FaultSpec, FleetMix, Policy,
    RequestClass, ScenarioSpec, ServeConfig, ServeScenario, ServeSweep, ShapedStream, TenantMix,
    TenantSpec, Timeline, Workload,
};
use neura_sparse::DatasetCatalog;

/// Per-request workload shrink classes: a request queries the full
/// simulator workload of its dataset, half of it, or a quarter.
const REQUEST_SHRINKS: [usize; 3] = [1, 2, 4];

/// Base seed of every workload (scenario seeds derive from it).
const STREAM_SEED: u64 = 0x5EED_CAFE;

/// Clients of the default closed-loop arm.
const DEFAULT_CLIENTS: usize = 64;

/// Clients of the `--speedup` demo scenario (closed loop, lane-parallel).
const SPEEDUP_CLIENTS: usize = 100_000;

/// Shards (one Tile-16 group) of the `--speedup` demo fleet — also the
/// cap on the demo's lane count.
const SPEEDUP_SHARDS: usize = 8;

fn usage() -> String {
    let mut text =
        "usage: serve [--json [PATH]] [--arrival A]... [--rps X]... [--policy P]... [--shards N]...\n\
     \x20            [--fleet SPEC]... [--dispatch D]... [--clients N]... [--think-ms X]\n\
     \x20            [--autoscale MIN:MAX] [--provision-ms X] [--check-ms X]\n\
     \x20            [--duration S] [--dataset NAME]... [--max-batch N] [--batch-timeout-ms X]\n\
     \x20            [--scenario NAME]... [--queue-bound N] [--tenant SPEC]... [--fault SPEC]\n\
     \x20            [--trace [PATH]] [--profile [PATH]] [--window-ms X] [--cost-model M]\n\
     \x20            [--epochs N] [--epoch-ms X] [--lanes L] [--no-meta] [--speedup]\n\
     \n\
     --json [PATH]         write a machine-readable artifact (default: target/artifacts/serve.json)\n\
     --arrival A           poisson | bursty (repeatable; default: poisson)\n\
     --rps X               mean arrival rate in requests/second (repeatable; default: auto,\n\
     \x20                    ~80% offered load on a single reference shard)\n\
     --policy P            fifo | sjf | batch (repeatable; default: fifo, sjf, batch)\n\
     --shards N            homogeneous Tile-16 fleet of N shards (repeatable)\n\
     --fleet SPEC          fleet mix, e.g. t16x4 or t64x1+t4x4 (repeatable; default: t16x1,\n\
     \x20                    t16x2, t16x4 plus hetero/closed/autoscaled comparison arms)\n\
     --dispatch D          least-loaded | affinity | cost (repeatable; default: least-loaded)\n\
     --clients N           add a closed-loop arm with N clients (repeatable)\n\
     --think-ms X          closed-loop mean think time (default: ~80% offered load)\n\
     --autoscale MIN:MAX   autoscale every scenario between MIN and MAX shards per group\n\
     --provision-ms X      autoscaler provisioning delay (default: 25x mean service)\n\
     --check-ms X          autoscaler decision interval (default: 5x mean service)\n\
     --duration S          simulated horizon in seconds (default: 2.0, shortened at the\n\
     \x20                    auto rate so streams stay ~20k requests)\n\
     --dataset NAME        serving-mix dataset (repeatable; default: cora, wiki-Vote, facebook)\n\
     --max-batch N         batch policy: largest batch size (default: 8)\n\
     --batch-timeout-ms X  batch policy: partial-batch flush timeout (default: 20x the\n\
     \x20                    mean service time)\n\
     --scenario NAME       named library scenario arm (repeatable; \"all\" = the whole library;\n\
     \x20                    default: the library rides along with the default arms)\n\
     --queue-bound N       bound every plain arm's backlog; arrivals beyond it are shed\n\
     --tenant SPEC         tenant as name:weight[:limit_rps[:slo_ms]] (repeatable; wraps the\n\
     \x20                    plain open arms in a multi-tenant mix; 0 = no limit / no SLO)\n\
     --fault SPEC          fault regime for the plain arms, e.g. crash2+pf0.5+deg0x3.0\n\
     --trace [PATH]        record request lifecycles and write a windowed neura_lab.timeline/v1\n\
     \x20                    artifact (default: target/artifacts/timeline.json)\n\
     --profile [PATH]      profile the per-class cost simulations (cycle cost model only) and\n\
     \x20                    write a neura_lab.profile/v1 artifact (default:\n\
     \x20                    target/artifacts/serve-profile.json)\n\
     --window-ms X         timeline window width (default: 1/50th of the horizon)\n\
     --cost-model M        cycle | analytic | hybrid — how request classes are priced\n\
     \x20                    (default: cycle = the cycle-accurate oracle; analytic = the\n\
     \x20                    closed-form neura_chip::analytic estimate, no simulations;\n\
     \x20                    hybrid = analytic rescaled through one cycle anchor per silicon)\n\
     --epochs N            replay each scenario as N parallel-in-time epoch fragments\n\
     \x20                    (merged results are byte-identical to the serial replay)\n\
     --epoch-ms X          epoch width in simulated milliseconds (alternative to --epochs)\n\
     --lanes L             split eligible closed-loop scenarios into L parallel\n\
     \x20                    client/shard lanes (a scenario parameter, not a tuning knob)\n\
     --no-meta             omit wall-clock/engine meta fields from the artifact (exact\n\
     \x20                    byte-comparison across thread counts)\n\
     --speedup             replay one large closed-loop lane scenario single-threaded and\n\
     \x20                    on the full pool, assert identical outcomes, report speedup\n\
     scenario library:"
        .to_string();
    for sc in ScenarioSpec::library() {
        text.push_str(&format!("\n       {:<10}{}", sc.name, sc.summary));
    }
    text
}

struct Args {
    arrivals: Vec<ArrivalProcess>,
    rps: Vec<f64>,
    policy_names: Vec<String>,
    fleets: Vec<FleetMix>,
    dispatches: Vec<DispatchKind>,
    clients: Vec<usize>,
    think_ms: Option<f64>,
    autoscale: Option<(usize, usize)>,
    provision_ms: Option<f64>,
    check_ms: Option<f64>,
    duration_s: f64,
    duration_given: bool,
    mix: Vec<String>,
    max_batch: usize,
    batch_timeout_s: f64,
    batch_timeout_given: bool,
    scenarios: Vec<String>,
    queue_bound: Option<usize>,
    tenants: Vec<TenantSpec>,
    fault: Option<String>,
    trace: bool,
    trace_path: Option<String>,
    profile: bool,
    profile_path: Option<String>,
    window_ms: Option<f64>,
    cost_model: CostModel,
    epochs: Option<usize>,
    epoch_ms: Option<f64>,
    lanes: Option<usize>,
    no_meta: bool,
    speedup: bool,
    passthrough: Vec<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        arrivals: Vec::new(),
        rps: Vec::new(),
        policy_names: Vec::new(),
        fleets: Vec::new(),
        dispatches: Vec::new(),
        clients: Vec::new(),
        think_ms: None,
        autoscale: None,
        provision_ms: None,
        check_ms: None,
        duration_s: 2.0,
        duration_given: false,
        mix: Vec::new(),
        max_batch: DEFAULT_MAX_BATCH,
        batch_timeout_s: DEFAULT_BATCH_TIMEOUT_S,
        batch_timeout_given: false,
        scenarios: Vec::new(),
        queue_bound: None,
        tenants: Vec::new(),
        fault: None,
        trace: false,
        trace_path: None,
        profile: false,
        profile_path: None,
        window_ms: None,
        cost_model: CostModel::default(),
        epochs: None,
        epoch_ms: None,
        lanes: None,
        no_meta: false,
        speedup: false,
        passthrough: Vec::new(),
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| bad_usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--arrival" => {
                let raw = value("--arrival");
                parsed.arrivals.push(
                    ArrivalProcess::parse(&raw)
                        .unwrap_or_else(|| bad_usage(&format!("unknown arrival process {raw:?}"))),
                );
            }
            "--rps" => {
                let raw = value("--rps");
                parsed.rps.push(match raw.parse::<f64>() {
                    Ok(r) if r.is_finite() && r > 0.0 => r,
                    _ => bad_usage(&format!("--rps {raw:?} is not a positive rate")),
                });
            }
            "--policy" => {
                let raw = value("--policy");
                if Policy::parse(&raw).is_none() {
                    bad_usage(&format!("unknown policy {raw:?}"));
                }
                parsed.policy_names.push(raw);
            }
            "--shards" => {
                let raw = value("--shards");
                match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        parsed.fleets.push(FleetMix::uniform(TileSize::Tile16, n));
                    }
                    _ => bad_usage(&format!("--shards {raw:?} is not a positive integer")),
                }
            }
            "--fleet" => {
                let raw = value("--fleet");
                parsed.fleets.push(
                    FleetMix::parse(&raw)
                        .unwrap_or_else(|| bad_usage(&format!("unparseable fleet mix {raw:?}"))),
                );
            }
            "--dispatch" => {
                let raw = value("--dispatch");
                parsed.dispatches.push(
                    DispatchKind::parse(&raw)
                        .unwrap_or_else(|| bad_usage(&format!("unknown dispatch policy {raw:?}"))),
                );
            }
            "--clients" => {
                let raw = value("--clients");
                parsed.clients.push(match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => bad_usage(&format!("--clients {raw:?} is not a positive integer")),
                });
            }
            "--think-ms" => {
                let raw = value("--think-ms");
                parsed.think_ms = Some(match raw.parse::<f64>() {
                    Ok(t) if t.is_finite() && t >= 0.0 => t,
                    _ => bad_usage(&format!("--think-ms {raw:?} is not a think time")),
                });
            }
            "--autoscale" => {
                let raw = value("--autoscale");
                let bounds = raw.split_once(':').and_then(|(lo, hi)| {
                    let lo = lo.parse::<usize>().ok().filter(|&n| n >= 1)?;
                    let hi = hi.parse::<usize>().ok().filter(|&n| n >= lo)?;
                    Some((lo, hi))
                });
                parsed.autoscale = Some(bounds.unwrap_or_else(|| {
                    bad_usage(&format!("--autoscale {raw:?} is not MIN:MAX with 1 <= MIN <= MAX"))
                }));
            }
            "--provision-ms" => {
                let raw = value("--provision-ms");
                parsed.provision_ms = Some(match raw.parse::<f64>() {
                    Ok(t) if t.is_finite() && t >= 0.0 => t,
                    _ => bad_usage(&format!("--provision-ms {raw:?} is not a delay")),
                });
            }
            "--check-ms" => {
                let raw = value("--check-ms");
                parsed.check_ms = Some(match raw.parse::<f64>() {
                    Ok(t) if t.is_finite() && t > 0.0 => t,
                    _ => bad_usage(&format!("--check-ms {raw:?} is not an interval")),
                });
            }
            "--duration" => {
                let raw = value("--duration");
                parsed.duration_s = match raw.parse::<f64>() {
                    Ok(d) if d.is_finite() && d > 0.0 => d,
                    _ => bad_usage(&format!("--duration {raw:?} is not a positive duration")),
                };
                parsed.duration_given = true;
            }
            "--dataset" => {
                let name = value("--dataset");
                if DatasetCatalog::by_name(&name).is_none() {
                    bad_usage(&format!("dataset {name:?} is not in the catalog"));
                }
                parsed.mix.push(name);
            }
            "--max-batch" => {
                let raw = value("--max-batch");
                parsed.max_batch = match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => bad_usage(&format!("--max-batch {raw:?} is not a positive integer")),
                };
            }
            "--batch-timeout-ms" => {
                let raw = value("--batch-timeout-ms");
                parsed.batch_timeout_s = match raw.parse::<f64>() {
                    Ok(t) if t.is_finite() && t >= 0.0 => t / 1e3,
                    _ => bad_usage(&format!("--batch-timeout-ms {raw:?} is not a timeout")),
                };
                parsed.batch_timeout_given = true;
            }
            "--scenario" => {
                let raw = value("--scenario");
                if raw.eq_ignore_ascii_case("all") {
                    parsed.scenarios.extend(ScenarioSpec::names().iter().map(|n| n.to_string()));
                } else if let Some(spec) = ScenarioSpec::by_name(&raw) {
                    parsed.scenarios.push(spec.name.to_string());
                } else {
                    bad_usage(&format!(
                        "unknown scenario {raw:?}; the library has: {}",
                        ScenarioSpec::names().join(", ")
                    ));
                }
            }
            "--queue-bound" => {
                let raw = value("--queue-bound");
                parsed.queue_bound = Some(match raw.parse::<usize>() {
                    Ok(n) => n,
                    _ => bad_usage(&format!("--queue-bound {raw:?} is not an integer")),
                });
            }
            "--tenant" => {
                let raw = value("--tenant");
                let tenant = TenantMix::parse_tenant(&raw).unwrap_or_else(|| {
                    bad_usage(&format!("--tenant {raw:?} is not name:weight[:limit_rps[:slo_ms]]"))
                });
                if parsed.tenants.iter().any(|t| t.name == tenant.name) {
                    bad_usage(&format!("duplicate tenant name {:?}", tenant.name));
                }
                parsed.tenants.push(tenant);
            }
            "--fault" => {
                let raw = value("--fault");
                // Validate the fragment now; the real spec is rebuilt per
                // arm with a seed derived from the arm's workload seed.
                if FaultSpec::parse(&raw, 0, 1.0).is_none() {
                    bad_usage(&format!(
                        "--fault {raw:?} is not a crashN/pfX/degGxM regime like crash2+pf0.5"
                    ));
                }
                parsed.fault = Some(raw);
            }
            "--trace" => {
                parsed.trace = true;
                if matches!(args.peek(), Some(next) if !next.starts_with("--")) {
                    parsed.trace_path = Some(args.next().expect("peeked"));
                }
            }
            "--profile" => {
                parsed.profile = true;
                if matches!(args.peek(), Some(next) if !next.starts_with("--")) {
                    parsed.profile_path = Some(args.next().expect("peeked"));
                }
            }
            "--window-ms" => {
                let raw = value("--window-ms");
                parsed.window_ms = Some(match raw.parse::<f64>() {
                    Ok(w) if w.is_finite() && w > 0.0 => w,
                    _ => bad_usage(&format!("--window-ms {raw:?} is not a positive width")),
                });
            }
            "--cost-model" => {
                let raw = value("--cost-model");
                parsed.cost_model = CostModel::parse(&raw)
                    .unwrap_or_else(|| bad_usage(&format!("unknown cost model {raw:?}")));
            }
            "--epochs" => {
                let raw = value("--epochs");
                parsed.epochs = Some(match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => bad_usage(&format!("--epochs {raw:?} is not a positive integer")),
                });
            }
            "--epoch-ms" => {
                let raw = value("--epoch-ms");
                parsed.epoch_ms = Some(match raw.parse::<f64>() {
                    Ok(w) if w.is_finite() && w > 0.0 => w,
                    _ => bad_usage(&format!("--epoch-ms {raw:?} is not a positive width")),
                });
            }
            "--lanes" => {
                let raw = value("--lanes");
                parsed.lanes = Some(match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => bad_usage(&format!("--lanes {raw:?} is not a positive integer")),
                });
            }
            "--no-meta" => parsed.no_meta = true,
            "--speedup" => parsed.speedup = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            // Only --json [PATH] is forwarded to the artifact session.
            "--json" => {
                parsed.passthrough.push(arg);
                if matches!(args.peek(), Some(next) if !next.starts_with("--")) {
                    parsed.passthrough.push(args.next().expect("peeked"));
                }
            }
            other => bad_usage(&format!("unrecognised argument {other:?}")),
        }
    }
    if parsed.mix.is_empty() {
        parsed.mix = vec!["cora".to_string(), "wiki-Vote".to_string(), "facebook".to_string()];
    }
    parsed
}

fn main() {
    let mut args = parse_args();
    // Profiles come out of the per-class cycle simulations; the analytic
    // and hybrid models have no (or too few) simulations to attach to.
    if args.profile && args.cost_model != CostModel::Cycle {
        bad_usage(&format!(
            "--profile requires the cycle cost model, but --cost-model {} prices classes \
             without per-class simulations",
            args.cost_model.name()
        ));
    }
    // The comparison arms only ride along when the user has not taken over
    // the fleet-shaped axes.
    let default_arms = args.fleets.is_empty()
        && args.dispatches.is_empty()
        && args.clients.is_empty()
        && args.autoscale.is_none();
    if args.fleets.is_empty() {
        args.fleets =
            vec![1, 2, 4].into_iter().map(|n| FleetMix::uniform(TileSize::Tile16, n)).collect();
    }
    // An autoscaled group must start inside the controller's bounds; catch
    // the mismatch here as a usage error instead of a simulation panic.
    if let Some((min, max)) = args.autoscale {
        for mix in &args.fleets {
            for group in &mix.groups {
                if !(min..=max).contains(&group.shards) {
                    bad_usage(&format!(
                        "--autoscale {min}:{max} is incompatible with fleet {:?}: group {:?} \
                         starts with {} shard(s); pass --fleet/--shards sizes within the bounds",
                        mix.id, group.name, group.shards
                    ));
                }
            }
        }
    }

    // A CLI fault regime that degrades a group no fleet has is a usage
    // error, not a mid-simulation panic.
    if let Some(raw) = &args.fault {
        let spec = FaultSpec::parse(raw, 0, 1.0).expect("validated at parse time");
        for mix in &args.fleets {
            for &(group, _) in &spec.degraded {
                if group >= mix.groups.len() {
                    bad_usage(&format!(
                        "--fault {raw:?} degrades group {group}, but fleet {:?} only has {} \
                         group(s)",
                        mix.id,
                        mix.groups.len()
                    ));
                }
            }
        }
    }
    // Library scenarios: the explicit --scenario list wins; otherwise the
    // whole library rides along with the default comparison arms.
    let mut scenario_specs: Vec<ScenarioSpec> = if args.scenarios.is_empty() {
        if default_arms {
            ScenarioSpec::library()
        } else {
            Vec::new()
        }
    } else {
        args.scenarios
            .iter()
            .map(|name| ScenarioSpec::by_name(name).expect("validated at parse time"))
            .collect()
    };
    let mut seen = std::collections::HashSet::new();
    scenario_specs.retain(|s| seen.insert(s.name));

    let mut session =
        ArtifactSession::from_arg_list("serve", neura_bench::scale_multiplier(), args.passthrough);
    let runner = Runner::from_env();

    // The tile configurations any arm of this run can place shards on.
    let hetero_mix = FleetMix::mixed(&[(TileSize::Tile64, 1), (TileSize::Tile4, 4)]);
    let hetero_peer = FleetMix::uniform(TileSize::Tile16, 5);
    let mut tiles: Vec<TileSize> =
        args.fleets.iter().flat_map(|mix| mix.groups.iter().map(|g| g.config.tile_size)).collect();
    if default_arms {
        tiles.extend([TileSize::Tile4, TileSize::Tile16, TileSize::Tile64]);
    }
    if !scenario_specs.is_empty() || args.speedup {
        // Scenario arms always run on a two-shard Tile-16 fleet, and the
        // --speedup demo fleet is Tile-16 too.
        tiles.push(TileSize::Tile16);
    }
    tiles.sort_by_key(|t| t.label());
    tiles.dedup();

    // Price one request per (chip fingerprint, class) pair into the shared
    // cost table; every scenario then replays against it. Fleets sharing a
    // configuration share the memo by construction. The default `cycle`
    // model measures each pair with one cycle-level simulation, fanned out
    // on the lab runner; `analytic` prices every pair with the closed-form
    // fast path (no simulations), and `hybrid` anchors the analytic
    // estimates to one cycle measurement per tile configuration.
    let classes: Vec<RequestClass> = args
        .mix
        .iter()
        .enumerate()
        .flat_map(|(dataset, _)| REQUEST_SHRINKS.map(|shrink| RequestClass { dataset, shrink }))
        .collect();
    let work: Vec<(TileSize, RequestClass)> =
        tiles.iter().flat_map(|&tile| classes.iter().map(move |&class| (tile, class))).collect();
    let (measured, chip_profiles): (Vec<ClassCost>, Vec<Option<Profile>>) = match args.cost_model {
        CostModel::Cycle => runner
            .run(&work, |_, (tile, class)| {
                let a = sim_matrix_at_fidelity(&args.mix[class.dataset], class.shrink);
                let mut chip = Accelerator::new(ChipConfig::for_tile_size(*tile));
                // With --profile, the chip profiler rides along on the same
                // memoised simulation; profiling off constructs nothing.
                let mut profiler = args.profile.then(|| Profiler::new(DEFAULT_WINDOW_CYCLES));
                let report = chip
                    .run_spgemm_profiled(&a, &a, profiler.as_mut())
                    .expect("simulation drains")
                    .report;
                let profile = WorkloadProfile::from_square(&args.mix[class.dataset], &a);
                (
                    ClassCost { cycles: report.total_cycles, flops: profile.flops() },
                    profiler.map(Profiler::into_profile),
                )
            })
            .into_iter()
            .unzip(),
        CostModel::Analytic => (
            runner.run(&work, |_, (tile, class)| {
                let a = sim_matrix_at_fidelity(&args.mix[class.dataset], class.shrink);
                let features = WorkloadFeatures::from_square(&a);
                analytic_class_cost(&ChipConfig::for_tile_size(*tile), &features)
            }),
            Vec::new(),
        ),
        CostModel::Hybrid => {
            // Symbolic features per class (cheap) plus one cycle-level
            // anchor simulation per tile: every other (tile, class) pair is
            // the analytic estimate rescaled through its tile's anchor.
            let class_features = runner.run(&classes, |_, class: &RequestClass| {
                let a = sim_matrix_at_fidelity(&args.mix[class.dataset], class.shrink);
                WorkloadFeatures::from_square(&a)
            });
            let anchor = classes[0];
            let anchors = runner.run(&tiles, |_, tile: &TileSize| {
                let a = sim_matrix_at_fidelity(&args.mix[anchor.dataset], anchor.shrink);
                let mut chip = Accelerator::new(ChipConfig::for_tile_size(*tile));
                chip.run_spgemm(&a, &a).expect("simulation drains").report.total_cycles
            });
            let priced = work
                .iter()
                .map(|&(tile, class)| {
                    let config = ChipConfig::for_tile_size(tile);
                    let tile_index = tiles.iter().position(|&t| t == tile).expect("tile listed");
                    let class_index =
                        classes.iter().position(|&c| c == class).expect("class listed");
                    let estimate = analytic_class_cost(&config, &class_features[class_index]);
                    let anchor_estimate = analytic_class_cost(&config, &class_features[0]).cycles;
                    ClassCost {
                        cycles: hybrid_scaled_cycles(
                            estimate.cycles,
                            anchors[tile_index],
                            anchor_estimate,
                        ),
                        flops: estimate.flops,
                    }
                })
                .collect();
            (priced, Vec::new())
        }
    };
    let mut costs = CostTable::new();
    for (&(tile, class), cost) in work.iter().zip(&measured) {
        let fp = costs.register(&ChipConfig::for_tile_size(tile));
        costs.insert(&fp, class, *cost);
        let service_ms = costs.service_seconds(&fp, class, 1) * 1e3;
        let mut record = RunRecord::new(format!(
            "serve/cost/{}/{}/x{}",
            tile.label(),
            args.mix[class.dataset],
            class.shrink
        ))
        .unit_metric("cycles", cost.cycles as f64, "cycles")
        .unit_metric("service_ms", service_ms, "ms")
        .metric("flops", cost.flops as f64);
        record.params.push(("tile".to_string(), tile.label().to_string()));
        record.params.push(("dataset".to_string(), args.mix[class.dataset].clone()));
        record.params.push(("shrink".to_string(), class.shrink.to_string()));
        if args.cost_model != CostModel::Cycle {
            record.params.push(("cost_model".to_string(), args.cost_model.name().to_string()));
        }
        session.push(record);
    }

    // Absolute request rates mean nothing across scale multipliers (a smoke
    // run's requests are thousands of times cheaper than paper-scale ones),
    // so every derived knob — arrival rate, batch timeout, think time,
    // autoscaler cadence — calibrates against the mean service time of the
    // first fleet's leading group. Derived from the memoised cycle costs,
    // so everything stays a pure function of the inputs.
    let ref_fp = args.fleets[0].groups[0].config.fingerprint();
    let mean_service_s = classes.iter().map(|&c| costs.service_seconds(&ref_fp, c, 1)).sum::<f64>()
        / classes.len() as f64;
    if !args.batch_timeout_given {
        args.batch_timeout_s = mean_service_s * 20.0;
    }
    let policies: Vec<Policy> = if args.policy_names.is_empty() {
        vec![Policy::Fifo, Policy::Sjf, Policy::batch(args.max_batch, args.batch_timeout_s)]
    } else {
        args.policy_names
            .iter()
            .map(|name| match Policy::parse(name).expect("validated at parse time") {
                Policy::BatchByDataset { .. } => {
                    Policy::batch(args.max_batch, args.batch_timeout_s)
                }
                other => other,
            })
            .collect()
    };
    let mut duration_s = args.duration_s;
    if args.rps.is_empty() {
        let auto_rps = (0.8 / mean_service_s).max(1.0).round();
        // Keep auto-rated streams to ~20k requests so smoke runs (where a
        // request costs microseconds and the rate lands in the millions)
        // stay fast; an explicit --duration wins.
        if !args.duration_given {
            duration_s = f64::min(duration_s, (20_000.0 / auto_rps).max(1e-3));
        }
        println!(
            "auto arrival rate: {auto_rps} req/s (~80% of one reference shard's {:.4} ms mean \
             service), duration {duration_s:.4} s",
            mean_service_s * 1e3,
        );
        args.rps.push(auto_rps);
    }
    // Closed-loop think time: clients cycle once per (think + response), so
    // this targets ~80% offered load — for the user's first client count on
    // their first fleet, or for the default 64-client/two-shard arm.
    let think_s = args.think_ms.map(|ms| ms / 1e3).unwrap_or_else(|| {
        let clients = *args.clients.first().unwrap_or(&DEFAULT_CLIENTS) as f64;
        let shards = if default_arms { 2.0 } else { args.fleets[0].total_shards() as f64 };
        (clients * mean_service_s / (0.8 * shards) - mean_service_s).max(0.0)
    });
    let controller = |min: usize, max: usize| {
        AutoscalePolicy::new(min, max)
            .with_check_interval_s(args.check_ms.map(|ms| ms / 1e3).unwrap_or(mean_service_s * 5.0))
            .with_provision_delay_s(
                args.provision_ms.map(|ms| ms / 1e3).unwrap_or(mean_service_s * 25.0),
            )
    };

    let base = ServeSweep::new()
        .arrivals(if args.arrivals.is_empty() {
            vec![ArrivalProcess::Poisson]
        } else {
            args.arrivals.clone()
        })
        .rps(args.rps.clone())
        .think_s(think_s)
        .policies(policies.clone());
    let mut sweep = base
        .clone()
        .fleets(args.fleets.clone())
        .dispatches(if args.dispatches.is_empty() {
            vec![DispatchKind::LeastLoaded]
        } else {
            args.dispatches.clone()
        })
        .closed_clients(args.clients.clone());
    if let Some((min, max)) = args.autoscale {
        sweep = sweep.autoscale([Some(controller(min, max))]);
    }
    let mut scenarios = sweep.scenarios("serve", STREAM_SEED);

    if default_arms {
        // Heterogeneous arm: equal shards and aggregate peak throughput,
        // every dispatch policy, one shared stream.
        let hetero = base
            .clone()
            .policies([Policy::Fifo])
            .fleets([hetero_peer, hetero_mix])
            .dispatches(DispatchKind::ALL);
        // Closed-loop arm: the open twin (same fleet/policy/dispatch) runs
        // in the main sweep, so open and closed tails sit side by side.
        let closed = base
            .clone()
            .arrivals([])
            .rps([])
            .closed_clients([DEFAULT_CLIENTS])
            .policies([Policy::Fifo])
            .fleets([FleetMix::uniform(TileSize::Tile16, 2)]);
        // Autoscaled arm: one elastic Tile-16 group, cost vs latency.
        let autoscaled = base
            .clone()
            .policies([Policy::Fifo])
            .fleets([FleetMix::uniform(TileSize::Tile16, 1)])
            .autoscale([Some(controller(1, 4))]);
        for arm in [hetero, closed, autoscaled] {
            let offset = scenarios.len();
            for mut scenario in arm.scenarios("serve", STREAM_SEED) {
                scenario.index += offset;
                scenarios.push(scenario);
            }
        }
    }

    // Library scenario arms: each replays on a two-shard Tile-16 fleet at
    // a rate calibrated to `load x fleet capacity` — so "overload" means
    // 3x capacity at every scale multiplier — with elastic scenarios
    // under a 1..4-shard autoscaler whose provisioning path doubles as
    // the crash-recovery path.
    let scn_fleet = FleetMix::uniform(TileSize::Tile16, 2);
    let scn_service_s = {
        let fp = scn_fleet.groups[0].config.fingerprint();
        classes.iter().map(|&c| costs.service_seconds(&fp, c, 1)).sum::<f64>()
            / classes.len() as f64
    };
    for sc in &scenario_specs {
        let rps = (sc.load * scn_fleet.total_shards() as f64 / scn_service_s).max(1.0).round();
        let mut arm = base
            .clone()
            .arrivals([ArrivalProcess::Poisson])
            .rps([rps])
            .policies([Policy::Fifo])
            .fleets([scn_fleet.clone()])
            .dispatches([DispatchKind::LeastLoaded]);
        if sc.elastic {
            arm = arm.autoscale([Some(controller(1, 4))]);
        }
        let offset = scenarios.len();
        for mut scenario in arm.scenarios(&format!("serve/scn-{}", sc.name), STREAM_SEED) {
            scenario.index += offset;
            scenario.scenario = Some(sc.clone());
            scenarios.push(scenario);
        }
    }

    // Replay every scenario on the runner; results collect in sweep order,
    // so the artifact is byte-identical for any NEURA_LAB_THREADS. With
    // --trace, each replay additionally records its lifecycle trace and
    // folds it into a windowed timeline *inside* the worker — the bulky
    // per-event trace never outlives its scenario — and without the flag
    // the untraced entry point runs, so tracing costs nothing when off.
    let mix_len = args.mix.len();
    let window_s = args.window_ms.map(|ms| ms / 1e3).unwrap_or(duration_s / 50.0);
    let cli_tenants = (!args.tenants.is_empty()).then(|| TenantMix::new(args.tenants.clone()));
    // The engine plan every replay runs under: serial unless --epochs /
    // --epoch-ms / --lanes asked for parallel-in-time fragments. The merged
    // results are byte-identical to the serial replay either way.
    let mut plan = EnginePlan::serial();
    if let Some(n) = args.epochs {
        plan = plan.with_epochs(n);
    }
    if let Some(ms) = args.epoch_ms {
        plan = plan.with_epoch_s(ms / 1e3);
    }
    if let Some(l) = args.lanes {
        plan = plan.with_lanes(l);
    }
    let sweep_started = std::time::Instant::now();
    let outcomes = runner.run(&scenarios, |_, scenario: &ServeScenario| {
        let mut workload = scenario.workload_spec(duration_s, mix_len, &REQUEST_SHRINKS);
        // CLI tenants wrap the plain open arms (library arms carry their
        // own mix; closed loops have no admission gate to rate-limit).
        if scenario.scenario.is_none() {
            if let (Some(mix), Workload::Open(spec)) = (&cli_tenants, &workload) {
                workload = Workload::Shaped(ShapedStream::tenants_only(spec.clone(), mix.clone()));
            }
        }
        let fault = match &scenario.scenario {
            Some(sc) => sc.fault_spec(scenario.seed, duration_s),
            None => args.fault.as_ref().map(|raw| {
                FaultSpec::parse(raw, derive_seed(scenario.seed, "cli-fault"), duration_s)
                    .expect("validated at parse time")
            }),
        };
        let mut cfg =
            ServeConfig::new(scenario.policy, &scenario.fleet.groups, scenario.dispatch, &costs);
        cfg.autoscale = scenario.autoscale.as_ref();
        cfg.queue_bound =
            scenario.scenario.as_ref().and_then(|sc| sc.queue_bound).or(args.queue_bound);
        cfg.faults = fault.as_ref();
        if args.trace {
            let (outcome, trace) = simulate_config_traced_parallel(&workload, &cfg, &plan);
            let timeline = Timeline::build(&trace, &outcome, window_s);
            (outcome, Some(timeline))
        } else {
            (simulate_config_parallel(&workload, &cfg, &plan), None)
        }
    });
    let sim_wall_s = sweep_started.elapsed().as_secs_f64();
    // Measurement context rides along as document-level meta — never gated
    // (trend diffs records only), and suppressed entirely by --no-meta so
    // CI can byte-compare artifacts across thread counts.
    if !args.no_meta {
        session.set_meta("sim_wall_s", sim_wall_s);
        session.set_meta("epochs", plan.epochs as f64);
        session.set_meta("lanes", plan.lanes as f64);
        session.set_meta("threads", runner.threads() as f64);
        if let Some(ms) = args.epoch_ms {
            session.set_meta("epoch_ms", ms);
        }
    }

    let mut timeline_artifact =
        Artifact::new("serve", neura_bench::scale_multiplier()).with_schema(TIMELINE_SCHEMA);
    let mut rows = Vec::new();
    for (scenario, (outcome, timeline)) in scenarios.iter().zip(&outcomes) {
        let shard_seconds = outcome.shard_seconds();
        let busy: f64 = outcome.group_stats.iter().map(|g| g.busy_s).sum();
        let util = if shard_seconds > 0.0 { busy / shard_seconds } else { 0.0 };
        let tails = outcome.latency_percentiles_s(&[50.0, 95.0, 99.0]);
        rows.push(vec![
            scenario.id.strip_prefix("serve/").unwrap_or(&scenario.id).to_string(),
            outcome.requests().to_string(),
            fmt(outcome.shed_rate(), 3),
            fmt(tails[0] * 1e3, 3),
            fmt(tails[1] * 1e3, 3),
            fmt(tails[2] * 1e3, 3),
            fmt(outcome.throughput_rps(), 1),
            fmt(util, 3),
            outcome.batch_sizes.len().to_string(),
            fmt(shard_seconds, 4),
        ]);
        let mut params = scenario.params();
        params.push(("mix".to_string(), args.mix.join("+")));
        params.push(("duration_s".to_string(), format!("{duration_s:?}")));
        if args.cost_model != CostModel::Cycle {
            params.push(("cost_model".to_string(), args.cost_model.name().to_string()));
        }
        session.extend(outcome.records(&scenario.id, &params));
        if let Some(timeline) = timeline {
            timeline_artifact.extend(timeline.records(&scenario.id, &params));
        }
    }

    print_table(
        "Serving scenarios: tail latency, throughput and capacity cost under load",
        &[
            "Scenario",
            "Requests",
            "Shed",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "Thr (req/s)",
            "Util",
            "Batches",
            "Shard-s",
        ],
        &rows,
    );
    println!(
        "\nEach scenario replays a deterministic {}-dataset workload on a fleet of\n\
         simulated chips: shard groups may mix tile sizes (class-aware dispatch\n\
         decides placement), closed-loop arms regenerate demand from completions,\n\
         and the autoscaled arm grows/shrinks capacity against its backlog. The\n\
         scn-* arms replay the production scenario library — rate waves, overload\n\
         against a bounded queue (Shed = shed rate), tenant rate limits, seeded\n\
         shard crashes and degraded silicon — all equally deterministic. Every\n\
         batch is charged a cycle cost memoised per (chip fingerprint x dataset x\n\
         request size) class ({} cycle-level simulations total). Serving arms of\n\
         the same workload share their seed, so they are directly comparable.",
        mix_len,
        work.len(),
    );
    match args.cost_model {
        CostModel::Cycle => {}
        CostModel::Analytic => println!(
            "cost model: analytic — every class cost above is a closed-form estimate \
             (0 cycle-level simulations; `xval` pins the error bound vs the oracle)."
        ),
        CostModel::Hybrid => println!(
            "cost model: hybrid — analytic class costs rescaled through one cycle-level \
             anchor simulation per tile configuration ({} simulations total).",
            tiles.len(),
        ),
    }

    if args.trace {
        let path = args
            .trace_path
            .as_deref()
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| Artifact::default_path("timeline"));
        timeline_artifact
            .write(&path)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("wrote {} ({} records)", path.display(), timeline_artifact.records.len());
    }

    if args.profile {
        // One chip profile per memoised (chip fingerprint, request class)
        // simulation — the exact cost-table entries the serving arms replay.
        let mut profile_artifact =
            Artifact::new("serve", neura_bench::scale_multiplier()).with_schema(PROFILE_SCHEMA);
        for ((tile, class), chip_profile) in work.iter().zip(&chip_profiles) {
            let chip_profile = chip_profile.as_ref().expect("cycle model profiles every pair");
            let scope =
                format!("serve/{}/{}/x{}", tile.label(), args.mix[class.dataset], class.shrink);
            if let Err(err) = chip_profile.check_conservation() {
                panic!("profile conservation violated for {scope}: {err}");
            }
            let mut records = profile_records(&scope, chip_profile);
            if let Some(first) = records.first_mut() {
                first.params.push(("tile".to_string(), tile.label().to_string()));
                first.params.push(("dataset".to_string(), args.mix[class.dataset].clone()));
                first.params.push(("shrink".to_string(), class.shrink.to_string()));
                first.params.push((
                    "fingerprint".to_string(),
                    ChipConfig::for_tile_size(*tile).fingerprint(),
                ));
            }
            profile_artifact.extend(records);
        }
        let path = args
            .profile_path
            .as_deref()
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| Artifact::default_path("serve-profile"));
        profile_artifact
            .write(&path)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("wrote {} ({} records)", path.display(), profile_artifact.records.len());
    }

    if args.speedup {
        // One large closed-loop scenario, lane-decomposed, replayed twice:
        // pinned to one thread and on the full pool. Lanes are a scenario
        // parameter, so both replays run the *same* lane plan — the engine
        // guarantees the outcomes identical, and the wall-clock ratio is
        // the thread-level speedup of the lane decomposition.
        let lanes = args
            .lanes
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
            .clamp(1, SPEEDUP_SHARDS);
        let demo_fleet = FleetMix::uniform(TileSize::Tile16, SPEEDUP_SHARDS);
        let fp = demo_fleet.groups[0].config.fingerprint();
        let service_s = classes.iter().map(|&c| costs.service_seconds(&fp, c, 1)).sum::<f64>()
            / classes.len() as f64;
        let spec = ClosedLoopSpec {
            clients: SPEEDUP_CLIENTS,
            think_s: service_s,
            duration_s: service_s * 12_500.0,
            mix_size: mix_len,
            shrinks: REQUEST_SHRINKS.to_vec(),
            seed: derive_seed(STREAM_SEED, "speedup"),
        };
        let workload = Workload::Closed(spec);
        let cfg =
            ServeConfig::new(Policy::Fifo, &demo_fleet.groups, DispatchKind::LeastLoaded, &costs);
        let lane_plan = EnginePlan::serial().with_lanes(lanes);
        let pinned_plan = lane_plan.clone().with_threads(1);
        let started = std::time::Instant::now();
        let serial = simulate_config_parallel(&workload, &cfg, &pinned_plan);
        let serial_wall_s = started.elapsed().as_secs_f64();
        let started = std::time::Instant::now();
        let parallel = simulate_config_parallel(&workload, &cfg, &lane_plan);
        let parallel_wall_s = started.elapsed().as_secs_f64();
        assert_eq!(serial, parallel, "lane replay must be thread-count invariant");
        let ratio = serial_wall_s / parallel_wall_s.max(1e-9);
        println!(
            "\nspeedup demo: {} closed-loop clients on {} Tile-16 shards, {} lane(s), \
             {} requests served:\n\
             \x20 serial (1 thread) {:.3} s — parallel ({} threads) {:.3} s — {:.2}x",
            SPEEDUP_CLIENTS,
            SPEEDUP_SHARDS,
            lanes,
            serial.requests(),
            serial_wall_s,
            runner.threads(),
            parallel_wall_s,
            ratio,
        );
        if !args.no_meta {
            session.set_meta("serial_wall_s", serial_wall_s);
            session.set_meta("parallel_wall_s", parallel_wall_s);
            session.set_meta("speedup", ratio);
        }
    }

    session.finish();
}

fn bad_usage(message: &str) -> ! {
    eprintln!("{message}\n{}", usage());
    std::process::exit(2);
}
