//! Trend tracking across artifact runs: diffs two `neura_lab.artifact/v1`
//! files (or two directories of them) and prints per-metric absolute and
//! relative deltas, so perf regressions between runs become numbers
//! instead of eyeballed tables. Run with
//! `cargo run --release -p neura_bench --bin trend -- BEFORE AFTER`. Flags:
//!
//! - `BEFORE` / `AFTER` — artifact JSON files, or directories whose
//!   `*.json` files are matched by name (e.g. two saved copies of
//!   `target/artifacts/`); directory diffs end with a summary line
//!   counting compared pairs, changed metrics and files present on only
//!   one side
//! - `--fail-above PCT` — exit non-zero when any metric's relative delta
//!   exceeds `PCT` percent in magnitude, or when a metric/file exists on
//!   only one side (`--fail-above 0` fails on any change at all)
//!
//! `neura_lab.timeline/v1` artifacts diff like any other — per-window
//! records match by ID, so per-window deltas come out of the same table —
//! and additionally print a per-scope worst-window p99 before/after
//! headline, the number a windowed comparison is usually run for.
//! `neura_lab.profile/v1` chip-profile artifacts likewise headline the
//! per-scope worst-window stall fraction.
//!
//! Artifacts carrying wall-clock context as document meta (`sim_wall_s`,
//! `speedup` — see the serve binary's parallel-engine flags) headline the
//! before/after wall-clock ratio. Meta is measurement context, never
//! gated: `--fail-above` only ever fires on record metrics.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use neura_bench::{fmt, print_table};
use neura_lab::trend::{self, TrendReport};
use neura_lab::Artifact;

fn usage() -> String {
    "usage: trend [--fail-above PCT] BEFORE AFTER\n\
     \n\
     BEFORE, AFTER     artifact JSON files, or directories of *.json artifacts\n\
     \x20                 (directories are matched file-name by file-name)\n\
     --fail-above PCT  exit 1 when a relative delta exceeds PCT percent in\n\
     \x20                 magnitude or a metric/file exists on only one side"
        .to_string()
}

fn main() -> ExitCode {
    let mut fail_above: Option<f64> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fail-above" => {
                let raw = args.next().unwrap_or_else(|| bad_usage("--fail-above needs a value"));
                fail_above = Some(match raw.parse::<f64>() {
                    Ok(pct) if pct.is_finite() && pct >= 0.0 => pct,
                    _ => bad_usage(&format!("--fail-above {raw:?} is not a percentage")),
                });
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                bad_usage(&format!("unrecognised argument {other:?}"))
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }
    let [before, after] = paths.as_slice() else {
        bad_usage("expected exactly two paths (BEFORE and AFTER)");
    };

    let (pairs, unmatched) = match collect_pairs(before, after) {
        Ok(found) => found,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let directory_mode = before.is_dir();
    let mut failed = !unmatched.is_empty();
    let mut changed_total = 0usize;
    let mut one_sided_metrics = 0usize;
    for path in &unmatched {
        println!("only on one side: {path}");
    }
    for (label, before_path, after_path) in &pairs {
        let (b, a) = match (trend::load_artifact(before_path), trend::load_artifact(after_path)) {
            (Ok(b), Ok(a)) => (b, a),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let report = trend::diff(&b, &a);
        print_report(label, &report);
        print_worst_windows(label, &b, &a);
        print_wall_clock(label, &b, &a);
        changed_total += report.changed().len();
        one_sided_metrics += report.only_in_before.len() + report.only_in_after.len();
        if let Some(pct) = fail_above {
            if report.exceeds(pct) {
                failed = true;
            }
        }
    }
    if directory_mode {
        // Files present on only one side are changes the per-file reports
        // cannot show — count them in the summary next to the metric
        // deltas, so a vanished artifact is as loud as a regressed one.
        println!(
            "\ntrend summary: {} file pair(s) compared, {} changed metric(s), \
             {} metric(s) on one side only, {} file(s) on one side only",
            pairs.len(),
            changed_total,
            one_sided_metrics,
            unmatched.len()
        );
    }

    match fail_above {
        Some(pct) if failed => {
            eprintln!("\ntrend: deltas exceed the --fail-above {pct}% threshold");
            ExitCode::FAILURE
        }
        _ => ExitCode::SUCCESS,
    }
}

/// Resolves the two inputs into `(label, before, after)` artifact pairs
/// plus the file names present on only one side (directory mode).
#[allow(clippy::type_complexity)]
fn collect_pairs(
    before: &Path,
    after: &Path,
) -> Result<(Vec<(String, PathBuf, PathBuf)>, Vec<String>), String> {
    if before.is_dir() != after.is_dir() {
        return Err("BEFORE and AFTER must both be files or both be directories".to_string());
    }
    if !before.is_dir() {
        let label = before
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| before.display().to_string());
        return Ok((vec![(label, before.to_path_buf(), after.to_path_buf())], Vec::new()));
    }
    let names = |dir: &Path| -> Result<Vec<String>, String> {
        let mut found = Vec::new();
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".json") {
                found.push(name);
            }
        }
        found.sort();
        Ok(found)
    };
    let before_names = names(before)?;
    let after_names = names(after)?;
    let mut pairs = Vec::new();
    let mut unmatched = Vec::new();
    for name in &before_names {
        if after_names.contains(name) {
            pairs.push((name.clone(), before.join(name), after.join(name)));
        } else {
            unmatched.push(format!("{} (before only)", before.join(name).display()));
        }
    }
    for name in &after_names {
        if !before_names.contains(name) {
            unmatched.push(format!("{} (after only)", after.join(name).display()));
        }
    }
    Ok((pairs, unmatched))
}

fn print_report(label: &str, report: &TrendReport) {
    for warning in &report.warnings {
        println!("warning ({label}): {warning}");
    }
    let changed = report.changed();
    let identical = report.deltas.len() - changed.len();
    if report.is_identical() {
        println!("{label}: {} metrics, all identical", report.deltas.len());
        return;
    }
    let rows: Vec<Vec<String>> = changed
        .iter()
        .map(|d| {
            vec![
                d.record.clone(),
                d.metric.clone(),
                fmt(d.before, 4),
                fmt(d.after, 4),
                fmt(d.abs_delta(), 4),
                if d.rel_pct().is_infinite() {
                    "inf".to_string()
                } else {
                    format!("{:+.2}", d.rel_pct())
                },
            ]
        })
        .collect();
    if !rows.is_empty() {
        print_table(
            &format!("{label}: {} changed metric(s), {identical} identical", rows.len()),
            &["Record", "Metric", "Before", "After", "Delta", "Delta %"],
            &rows,
        );
    }
    for path in &report.only_in_before {
        println!("{label}: metric only in BEFORE: {path}");
    }
    for path in &report.only_in_after {
        println!("{label}: metric only in AFTER: {path}");
    }
}

/// Timeline artifacts carry a per-scope worst-window p99 — the headline a
/// windowed diff is usually run for — so print it next to the per-metric
/// table. Prints nothing for plain run artifacts.
fn print_worst_windows(label: &str, before: &Artifact, after: &Artifact) {
    let after_worst = trend::worst_window_p99s(after);
    for (scope, b) in trend::worst_window_p99s(before) {
        if let Some((_, a)) = after_worst.iter().find(|(s, _)| *s == scope) {
            println!("{label}: worst-window p99 [{scope}]: {} -> {} ms", fmt(b, 4), fmt(*a, 4));
        }
    }
    // Chip profiles headline the same way: the stall fraction of the
    // most-stalled window is what a profile diff is usually run for.
    let after_stall = trend::worst_window_stall_fracs(after);
    for (scope, b) in trend::worst_window_stall_fracs(before) {
        if let Some((_, a)) = after_stall.iter().find(|(s, _)| *s == scope) {
            println!(
                "{label}: worst-window stall fraction [{scope}]: {} -> {}",
                fmt(b, 4),
                fmt(*a, 4)
            );
        }
    }
}

/// Artifacts from the serve binary's parallel engine carry their sweep
/// wall-clock as document meta. The before/after ratio is the headline a
/// serial-vs-parallel comparison is run for, so print it when both sides
/// carry it — it never participates in `--fail-above` gating (wall time
/// varies run to run; only record metrics are byte-stable).
fn print_wall_clock(label: &str, before: &Artifact, after: &Artifact) {
    if let (Some(b), Some(a)) = (before.meta_value("sim_wall_s"), after.meta_value("sim_wall_s")) {
        let ratio = if a > 0.0 { b / a } else { f64::INFINITY };
        println!(
            "{label}: sim wall clock: {} -> {} s ({}x, not gated)",
            fmt(b, 4),
            fmt(a, 4),
            fmt(ratio, 2)
        );
    }
    if let Some(speedup) = after.meta_value("speedup") {
        println!("{label}: measured lane speedup (AFTER): {}x", fmt(speedup, 2));
    }
}

fn bad_usage(message: &str) -> ! {
    eprintln!("{message}\n{}", usage());
    std::process::exit(2);
}
