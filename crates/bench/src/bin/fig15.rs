//! Figure 15 — HACC completion-latency histogram: barrier-based eviction
//! (HACC-BE) versus rolling eviction (HACC-RE).
//!
//! The two eviction policies are a `neura_lab` sweep executed in parallel.
//! Run with `cargo run --release -p neura_bench --bin fig15` (add `--json
//! [path]` for a machine-readable artifact).

use neura_bench::{fmt, print_table, scaled_matrix_by_name};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::{ChipConfig, EvictionPolicy};
use neura_lab::golden::{self, slugify};
use neura_lab::{ArtifactSession, ExperimentSpec, RunRecord, Runner, SweepGrid};

fn main() {
    let scale_mult = neura_bench::scale_multiplier();
    let mut session = ArtifactSession::from_args("fig15", scale_mult);
    let a = scaled_matrix_by_name("cora", 4);

    // The HashPad is scaled down with the dataset (the full 2048-line pad of
    // Tile-16 would never fill on a 512x-scaled graph, hiding the pressure
    // the paper's full-size runs exhibit).
    let mut base = ChipConfig::tile_16();
    base.mem.hashlines = 256;
    let spec = ExperimentSpec::new(
        "fig15",
        base,
        SweepGrid::new()
            .datasets(["cora"])
            .evictions([EvictionPolicy::Barrier, EvictionPolicy::Rolling]),
    );
    let results = Runner::from_env().run_spec(&spec, |point| {
        let mut chip = Accelerator::new(point.config.clone());
        chip.run_spgemm(&a, &a).expect("simulation drains").report
    });

    let mut rows = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for (point, report) in &results {
        let hist = &report.hacc_latency_histogram;
        if labels.is_empty() {
            labels = hist.bin_labels();
        }
        let name = match point.config.eviction {
            EvictionPolicy::Barrier => "HACC-BE (barrier)",
            EvictionPolicy::Rolling => "HACC-RE (rolling)",
        };
        let mut row = vec![
            name.to_string(),
            fmt(hist.mean(), 0),
            report.peak_hashpad_occupancy.to_string(),
            report.hashpad_full_stalls.to_string(),
            report.total_cycles.to_string(),
        ];
        row.extend(hist.percentages().iter().map(|p| fmt(*p, 1)));
        rows.push(row);

        let mut record = RunRecord::new(&point.id).with_execution(report);
        for (label, pct) in labels.iter().zip(hist.percentages()) {
            record = record.unit_metric(format!("latency_bin_{}", slugify(label)), pct, "%");
        }
        record.params = point.params();
        session.push(record);
    }

    let mut headers = vec![
        "Scheme".to_string(),
        "Avg latency".to_string(),
        "Peak pad occupancy".to_string(),
        "Pad-full stalls".to_string(),
        "Total cycles".to_string(),
    ];
    headers.extend(labels);
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 15: HACC latency histogram, barrier vs rolling eviction (% per 50-cycle bin)",
        &header_refs,
        &rows,
    );
    println!(
        "\nPaper averages: HACC-BE 872 cycles vs HACC-RE 347 cycles — rolling eviction\n\
         keeps partial products resident for far fewer cycles and avoids pad-full stalls."
    );

    let artifact = session.finish();
    golden::check(&artifact, golden::fig15_goldens(), golden::Mode::from_scale_mult(scale_mult))
        .print_and_enforce("Figure 15");
}
