//! Figure 15 — HACC completion-latency histogram: barrier-based eviction
//! (HACC-BE) versus rolling eviction (HACC-RE).
//!
//! Run with `cargo run --release -p neura_bench --bin fig15`.

use neura_bench::{fmt, print_table, scaled_matrix};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::{ChipConfig, EvictionPolicy};
use neura_sparse::DatasetCatalog;

fn main() {
    let cora = DatasetCatalog::by_name("cora").expect("cora exists");
    let a = scaled_matrix(&cora, 4);

    let mut rows = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for (name, policy) in [
        ("HACC-BE (barrier)", EvictionPolicy::Barrier),
        ("HACC-RE (rolling)", EvictionPolicy::Rolling),
    ] {
        // The HashPad is scaled down with the dataset (the full 2048-line pad
        // of Tile-16 would never fill on a 512x-scaled graph, hiding the
        // pressure the paper's full-size runs exhibit).
        let mut config = ChipConfig::tile_16().with_eviction(policy);
        config.mem.hashlines = 256;
        let mut chip = Accelerator::new(config);
        let run = chip.run_spgemm(&a, &a).expect("simulation drains");
        let hist = &run.report.hacc_latency_histogram;
        if labels.is_empty() {
            labels = hist.bin_labels();
        }
        let mut row = vec![
            name.to_string(),
            fmt(hist.mean(), 0),
            run.report.peak_hashpad_occupancy.to_string(),
            run.report.hashpad_full_stalls.to_string(),
            run.report.total_cycles.to_string(),
        ];
        row.extend(hist.percentages().iter().map(|p| fmt(*p, 1)));
        rows.push(row);
    }

    let mut headers = vec![
        "Scheme".to_string(),
        "Avg latency".to_string(),
        "Peak pad occupancy".to_string(),
        "Pad-full stalls".to_string(),
        "Total cycles".to_string(),
    ];
    headers.extend(labels);
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 15: HACC latency histogram, barrier vs rolling eviction (% per 50-cycle bin)",
        &header_refs,
        &rows,
    );
    println!(
        "\nPaper averages: HACC-BE 872 cycles vs HACC-RE 347 cycles — rolling eviction\n\
         keeps partial products resident for far fewer cycles and avoids pad-full stalls."
    );
}
