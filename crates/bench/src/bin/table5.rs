//! Table 5 — cross-platform SpGEMM comparison.
//!
//! Prints the static platform specifications, the modeled SpGEMM throughput
//! on the common matrix suite and the derived efficiency metrics, plus the
//! Tile-16 speedup row. Workload profiles are built in parallel on the
//! `neura_lab` runner and the NeuraChip throughput/speedup numbers are
//! checked against the pinned golden values (strictly at paper scale,
//! presence-only under `NEURA_BENCH_SCALE_MULT`). Run with
//! `cargo run --release -p neura_bench --bin table5` (add `--json [path]`
//! for a machine-readable artifact).

use neura_baselines::spgemm::{geometric_mean, SpgemmModel, SpgemmPlatform};
use neura_baselines::WorkloadProfile;
use neura_bench::{fmt, print_table, scaled_matrix, MODEL_SCALE};
use neura_lab::golden::{self, slugify};
use neura_lab::{ArtifactSession, RunRecord, Runner};
use neura_sparse::DatasetCatalog;

fn main() {
    let scale_mult = neura_bench::scale_multiplier();
    let mut session = ArtifactSession::from_args("table5", scale_mult);

    // Modeled throughput over the common (Table 1) matrix suite; profile
    // construction (graph generation + SpGEMM analysis) fans out over the
    // runner, the per-platform estimates are cheap arithmetic.
    let datasets = DatasetCatalog::spgemm_suite();
    let profiles: Vec<WorkloadProfile> = Runner::from_env().run(&datasets, |_, d| {
        WorkloadProfile::from_square(d.name, &scaled_matrix(d, MODEL_SCALE))
    });

    let platforms = [
        SpgemmPlatform::CpuMkl,
        SpgemmPlatform::GpuCusparse,
        SpgemmPlatform::GpuCusp,
        SpgemmPlatform::GpuHipsparse,
        SpgemmPlatform::OuterSpace,
        SpgemmPlatform::SpArch,
        SpgemmPlatform::Gamma,
        SpgemmPlatform::NeuraChip { tile: 4 },
        SpgemmPlatform::NeuraChip { tile: 16 },
        SpgemmPlatform::NeuraChip { tile: 64 },
    ];
    let tile16 = SpgemmPlatform::NeuraChip { tile: 16 };

    let mut rows = Vec::new();
    for platform in platforms {
        let spec = platform.spec();
        let modeled: Vec<f64> = profiles.iter().map(|p| platform.estimate(p).gops).collect();
        let mean_gops = modeled.iter().sum::<f64>() / modeled.len() as f64;
        let speedups: Vec<f64> = profiles
            .iter()
            .map(|p| tile16.estimate(p).speedup_over(&platform.estimate(p)))
            .collect();
        let speedup_geomean = geometric_mean(&speedups);
        rows.push(vec![
            spec.name.to_string(),
            spec.compute_units.to_string(),
            fmt(spec.frequency_ghz, 1),
            fmt(spec.peak_gflops, 0),
            fmt(spec.spgemm_gops_reference, 2),
            fmt(mean_gops, 2),
            fmt(spec.on_chip_memory_mb, 2),
            fmt(spec.off_chip_bandwidth_gbps, 0),
            spec.technology_nm.to_string(),
            spec.area_mm2.map(|a| fmt(a, 2)).unwrap_or_else(|| "-".into()),
            spec.power_w.map(|p| fmt(p, 2)).unwrap_or_else(|| "-".into()),
            spec.energy_efficiency().map(|e| fmt(e, 3)).unwrap_or_else(|| "-".into()),
            spec.area_efficiency().map(|e| fmt(e, 3)).unwrap_or_else(|| "-".into()),
            fmt(speedup_geomean, 2),
        ]);

        let mut record = RunRecord::new(format!("table5/{}", slugify(spec.name)))
            .param("platform", spec.name)
            .param("compute_units", spec.compute_units)
            .unit_metric("frequency_ghz", spec.frequency_ghz, "GHz")
            .unit_metric("peak_gflops", spec.peak_gflops, "GFLOP/s")
            .unit_metric("spgemm_gops_paper", spec.spgemm_gops_reference, "GOP/s")
            .unit_metric("mean_gops", mean_gops, "GOP/s")
            .unit_metric("on_chip_memory_mb", spec.on_chip_memory_mb, "MB")
            .unit_metric("off_chip_bandwidth_gbps", spec.off_chip_bandwidth_gbps, "GB/s")
            .unit_metric("technology_nm", spec.technology_nm as f64, "nm")
            .unit_metric("tile16_speedup_geomean", speedup_geomean, "x");
        if let Some(area) = spec.area_mm2 {
            record = record.unit_metric("area_mm2", area, "mm^2");
        }
        if let Some(power) = spec.power_w {
            record = record.unit_metric("power_w", power, "W");
        }
        if let Some(e) = spec.energy_efficiency() {
            record = record.unit_metric("gops_per_w", e, "GOP/s/W");
        }
        if let Some(e) = spec.area_efficiency() {
            record = record.unit_metric("gops_per_mm2", e, "GOP/s/mm^2");
        }
        session.push(record);
    }
    print_table(
        "Table 5: SpGEMM accelerator comparison",
        &[
            "Platform",
            "Compute Units",
            "Freq (GHz)",
            "Peak GFLOPs",
            "SpGEMM GOP/s (paper)",
            "SpGEMM GOP/s (model)",
            "On-chip MB",
            "Off-chip GB/s",
            "Tech (nm)",
            "Area mm^2",
            "Power W",
            "GOPS/W",
            "GOPS/mm^2",
            "Tile-16 speedup (geomean)",
        ],
        &rows,
    );

    let artifact = session.finish();
    golden::check(&artifact, golden::table5_goldens(), golden::Mode::from_scale_mult(scale_mult))
        .print_and_enforce("Table 5");
}
