//! Table 5 — cross-platform SpGEMM comparison.
//!
//! Prints the static platform specifications, the modeled SpGEMM throughput
//! on the common matrix suite and the derived efficiency metrics, plus the
//! Tile-16 speedup row.  Run with
//! `cargo run --release -p neura_bench --bin table5`.

use neura_baselines::spgemm::{geometric_mean, SpgemmModel, SpgemmPlatform};
use neura_baselines::WorkloadProfile;
use neura_bench::{fmt, print_table, scaled_matrix, MODEL_SCALE};
use neura_sparse::DatasetCatalog;

fn main() {
    // Modeled throughput over the common (Table 1) matrix suite.
    let profiles: Vec<WorkloadProfile> = DatasetCatalog::spgemm_suite()
        .iter()
        .map(|d| WorkloadProfile::from_square(d.name, &scaled_matrix(d, MODEL_SCALE)))
        .collect();

    let platforms = [
        SpgemmPlatform::CpuMkl,
        SpgemmPlatform::GpuCusparse,
        SpgemmPlatform::GpuCusp,
        SpgemmPlatform::GpuHipsparse,
        SpgemmPlatform::OuterSpace,
        SpgemmPlatform::SpArch,
        SpgemmPlatform::Gamma,
        SpgemmPlatform::NeuraChip { tile: 4 },
        SpgemmPlatform::NeuraChip { tile: 16 },
        SpgemmPlatform::NeuraChip { tile: 64 },
    ];
    let tile16 = SpgemmPlatform::NeuraChip { tile: 16 };

    let mut rows = Vec::new();
    for platform in platforms {
        let spec = platform.spec();
        let modeled: Vec<f64> = profiles.iter().map(|p| platform.estimate(p).gops).collect();
        let mean_gops = modeled.iter().sum::<f64>() / modeled.len() as f64;
        let speedups: Vec<f64> = profiles
            .iter()
            .map(|p| tile16.estimate(p).speedup_over(&platform.estimate(p)))
            .collect();
        rows.push(vec![
            spec.name.to_string(),
            spec.compute_units.to_string(),
            fmt(spec.frequency_ghz, 1),
            fmt(spec.peak_gflops, 0),
            fmt(spec.spgemm_gops_reference, 2),
            fmt(mean_gops, 2),
            fmt(spec.on_chip_memory_mb, 2),
            fmt(spec.off_chip_bandwidth_gbps, 0),
            spec.technology_nm.to_string(),
            spec.area_mm2.map(|a| fmt(a, 2)).unwrap_or_else(|| "-".into()),
            spec.power_w.map(|p| fmt(p, 2)).unwrap_or_else(|| "-".into()),
            spec.energy_efficiency().map(|e| fmt(e, 3)).unwrap_or_else(|| "-".into()),
            spec.area_efficiency().map(|e| fmt(e, 3)).unwrap_or_else(|| "-".into()),
            fmt(geometric_mean(&speedups), 2),
        ]);
    }
    print_table(
        "Table 5: SpGEMM accelerator comparison",
        &[
            "Platform",
            "Compute Units",
            "Freq (GHz)",
            "Peak GFLOPs",
            "SpGEMM GOP/s (paper)",
            "SpGEMM GOP/s (model)",
            "On-chip MB",
            "Off-chip GB/s",
            "Tech (nm)",
            "Area mm^2",
            "Power W",
            "GOPS/W",
            "GOPS/mm^2",
            "Tile-16 speedup (geomean)",
        ],
        &rows,
    );
}
