//! Design-space ablations called out in DESIGN.md: compute mapping, eviction
//! policy, MMH tile height and HashPad size, all on the Cora-analog SpGEMM.
//!
//! Run with `cargo run --release -p neura_bench --bin ablation`.

use neura_bench::{fmt, print_table, scaled_matrix};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::{ChipConfig, EvictionPolicy};
use neura_chip::mapping::MappingKind;
use neura_sparse::stats::imbalance;
use neura_sparse::DatasetCatalog;

fn main() {
    let cora = DatasetCatalog::by_name("cora").expect("cora exists");
    let a = scaled_matrix(&cora, 4);

    // (1) Mapping ablation.
    let mut rows = Vec::new();
    for kind in MappingKind::ALL {
        let mut chip = Accelerator::new(ChipConfig::tile_16().with_mapping(kind));
        let run = chip.run_spgemm(&a, &a).expect("simulation drains");
        let (max_over_mean, cv) = imbalance(&run.report.mem_work_histogram);
        rows.push(vec![
            kind.name().to_string(),
            run.report.total_cycles.to_string(),
            fmt(max_over_mean, 3),
            fmt(cv, 3),
            fmt(run.report.core_utilization * 100.0, 1),
        ]);
    }
    print_table(
        "Ablation A: compute mapping (Tile-16, Cora analog)",
        &["Mapping", "Cycles", "NeuraMem max/mean", "NeuraMem CV", "Core util %"],
        &rows,
    );

    // (2) Eviction-policy ablation.
    let mut rows = Vec::new();
    for (name, policy) in
        [("rolling", EvictionPolicy::Rolling), ("barrier", EvictionPolicy::Barrier)]
    {
        let mut chip = Accelerator::new(ChipConfig::tile_16().with_eviction(policy));
        let run = chip.run_spgemm(&a, &a).expect("simulation drains");
        rows.push(vec![
            name.to_string(),
            run.report.total_cycles.to_string(),
            run.report.peak_hashpad_occupancy.to_string(),
            run.report.hashpad_full_stalls.to_string(),
            fmt(run.report.hacc_latency_histogram.mean(), 0),
        ]);
    }
    print_table(
        "Ablation B: eviction policy (Tile-16, Cora analog)",
        &["Eviction", "Cycles", "Peak pad occupancy", "Pad-full stalls", "Avg HACC latency"],
        &rows,
    );

    // (3) MMH tile-height ablation.
    let mut rows = Vec::new();
    for tile in [1u8, 2, 4, 8] {
        let mut chip = Accelerator::new(ChipConfig::tile_16().with_mmh_tile(tile));
        let run = chip.run_spgemm(&a, &a).expect("simulation drains");
        rows.push(vec![
            format!("MMH{tile}"),
            run.report.mmh_instructions.to_string(),
            fmt(run.report.cpi, 0),
            run.report.total_cycles.to_string(),
            fmt(run.report.gops, 2),
        ]);
    }
    print_table(
        "Ablation C: MMH tile height (Tile-16, Cora analog)",
        &["Variant", "MMH instructions", "Avg CPI", "Cycles", "GOP/s"],
        &rows,
    );

    // (4) HashPad size ablation.
    let mut rows = Vec::new();
    for hashlines in [256usize, 1024, 2048, 8192] {
        let mut config = ChipConfig::tile_16();
        config.mem.hashlines = hashlines;
        let mut chip = Accelerator::new(config);
        let run = chip.run_spgemm(&a, &a).expect("simulation drains");
        rows.push(vec![
            hashlines.to_string(),
            run.report.total_cycles.to_string(),
            run.report.hashpad_full_stalls.to_string(),
            run.report.peak_hashpad_occupancy.to_string(),
        ]);
    }
    print_table(
        "Ablation D: HashPad size (hash-lines per NeuraMem)",
        &["Hashlines", "Cycles", "Pad-full stalls", "Peak occupancy"],
        &rows,
    );
}
