//! Design-space ablations called out in DESIGN.md: compute mapping, eviction
//! policy, MMH tile height and HashPad size, all on the Cora-analog SpGEMM.
//!
//! The four ablations are declared as `neura_lab` experiment specs and their
//! points — fourteen full cycle-level simulations — run concurrently on the
//! lab's work-stealing runner. Run with
//! `cargo run --release -p neura_bench --bin ablation` (add `--json [path]`
//! for a machine-readable artifact).

use neura_bench::{fmt, print_table, scaled_matrix_by_name};
use neura_chip::accelerator::{Accelerator, ExecutionReport};
use neura_chip::config::{ChipConfig, EvictionPolicy};
use neura_chip::mapping::MappingKind;
use neura_lab::{ArtifactSession, ExperimentSpec, Runner, SweepGrid, SweepPoint};
use neura_sparse::stats::imbalance;

fn main() {
    let mut session = ArtifactSession::from_args("ablation", neura_bench::scale_multiplier());
    let a = scaled_matrix_by_name("cora", 4);

    let base = ChipConfig::tile_16();
    let specs = [
        ExperimentSpec::new(
            "ablation/mapping",
            base.clone(),
            SweepGrid::new().datasets(["cora"]).mappings(MappingKind::ALL),
        ),
        ExperimentSpec::new(
            "ablation/eviction",
            base.clone(),
            SweepGrid::new()
                .datasets(["cora"])
                .evictions([EvictionPolicy::Rolling, EvictionPolicy::Barrier]),
        ),
        ExperimentSpec::new(
            "ablation/mmh-tile",
            base.clone(),
            SweepGrid::new().datasets(["cora"]).mmh_tiles([1, 2, 4, 8]),
        ),
        ExperimentSpec::new(
            "ablation/hashpad",
            base,
            SweepGrid::new().datasets(["cora"]).hashlines([256, 1024, 2048, 8192]),
        ),
    ];

    // One flat point list across all four ablations: the runner interleaves
    // the fourteen simulations instead of draining each group serially.
    let points: Vec<SweepPoint> = specs.iter().flat_map(ExperimentSpec::points).collect();
    let runner = Runner::from_env();
    let reports: Vec<ExecutionReport> = runner.run(&points, |_, point| {
        let mut chip = Accelerator::new(point.config.clone());
        chip.run_spgemm(&a, &a).expect("simulation drains").report
    });
    for (point, report) in points.iter().zip(&reports) {
        let mut record = neura_lab::RunRecord::new(&point.id).with_execution(report);
        record.params = point.params();
        session.push(record);
    }

    let group = |prefix: &str| -> Vec<(&SweepPoint, &ExecutionReport)> {
        points.iter().zip(&reports).filter(|(p, _)| p.id.starts_with(prefix)).collect()
    };

    let rows: Vec<Vec<String>> = group("ablation/mapping/")
        .iter()
        .map(|(point, report)| {
            let (max_over_mean, cv) = imbalance(&report.mem_work_histogram);
            vec![
                point.config.mapping.name().to_string(),
                report.total_cycles.to_string(),
                fmt(max_over_mean, 3),
                fmt(cv, 3),
                fmt(report.core_utilization * 100.0, 1),
            ]
        })
        .collect();
    print_table(
        "Ablation A: compute mapping (Tile-16, Cora analog)",
        &["Mapping", "Cycles", "NeuraMem max/mean", "NeuraMem CV", "Core util %"],
        &rows,
    );

    let rows: Vec<Vec<String>> = group("ablation/eviction/")
        .iter()
        .map(|(point, report)| {
            vec![
                neura_lab::spec::eviction_name(point.config.eviction).to_string(),
                report.total_cycles.to_string(),
                report.peak_hashpad_occupancy.to_string(),
                report.hashpad_full_stalls.to_string(),
                fmt(report.hacc_latency_histogram.mean(), 0),
            ]
        })
        .collect();
    print_table(
        "Ablation B: eviction policy (Tile-16, Cora analog)",
        &["Eviction", "Cycles", "Peak pad occupancy", "Pad-full stalls", "Avg HACC latency"],
        &rows,
    );

    let rows: Vec<Vec<String>> = group("ablation/mmh-tile/")
        .iter()
        .map(|(point, report)| {
            vec![
                format!("MMH{}", point.config.mmh_tile),
                report.mmh_instructions.to_string(),
                fmt(report.cpi, 0),
                report.total_cycles.to_string(),
                fmt(report.gops, 2),
            ]
        })
        .collect();
    print_table(
        "Ablation C: MMH tile height (Tile-16, Cora analog)",
        &["Variant", "MMH instructions", "Avg CPI", "Cycles", "GOP/s"],
        &rows,
    );

    let rows: Vec<Vec<String>> = group("ablation/hashpad/")
        .iter()
        .map(|(point, report)| {
            vec![
                point.config.mem.hashlines.to_string(),
                report.total_cycles.to_string(),
                report.hashpad_full_stalls.to_string(),
                report.peak_hashpad_occupancy.to_string(),
            ]
        })
        .collect();
    print_table(
        "Ablation D: HashPad size (hash-lines per NeuraMem)",
        &["Hashlines", "Cycles", "Pad-full stalls", "Peak occupancy"],
        &rows,
    );

    session.finish();
}
