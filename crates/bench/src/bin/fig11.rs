//! Figure 11 — architectural impact of the tile configuration on a GCN
//! (Cora) workload, normalised to Tile-4.
//!
//! Run with `cargo run --release -p neura_bench --bin fig11`.

use neura_bench::{fmt, print_table, scaled_matrix};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::{ChipConfig, TileSize};
use neura_chip::power::PowerModel;
use neura_sparse::gen::feature_matrix;
use neura_sparse::DatasetCatalog;

fn main() {
    let cora = DatasetCatalog::by_name("cora").expect("cora exists");
    let mut a = scaled_matrix(&cora, 4);
    a.row_normalize();
    let x = feature_matrix(a.cols(), 16, 3);
    let power_model = PowerModel::calibrated();

    struct Sample {
        tile: &'static str,
        stall: f64,
        cpi: f64,
        ipc: f64,
        in_flight: f64,
        power: f64,
        busy: f64,
    }

    let mut samples = Vec::new();
    for tile in TileSize::ALL {
        let config = ChipConfig::for_tile_size(tile);
        let power = power_model.breakdown(&config).total_power_w();
        let mut chip = Accelerator::new(config);
        let run = chip.run_aggregation(&a, &x).expect("simulation drains");
        samples.push(Sample {
            tile: tile.name(),
            stall: run.report.core_stall_cycles as f64,
            cpi: run.report.cpi,
            ipc: run.report.ipc,
            in_flight: run.report.avg_in_flight_mem,
            power,
            busy: run.report.core_busy_cycles as f64,
        });
    }

    let base = &samples[0];
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.tile.to_string(),
                fmt(s.stall / base.stall.max(1.0), 3),
                fmt(s.cpi / base.cpi.max(1e-9), 3),
                fmt(s.ipc / base.ipc.max(1e-9), 3),
                fmt(s.in_flight / base.in_flight.max(1e-9), 3),
                fmt(s.power / base.power.max(1e-9), 3),
                fmt(s.busy / base.busy.max(1.0), 3),
            ]
        })
        .collect();
    print_table(
        "Figure 11: architectural impact of tile configuration on Cora (normalised to Tile-4)",
        &["Config", "Stall cycles", "CPI", "IPC", "In-flight mem instx", "Power", "Busy cycles"],
        &rows,
    );
    println!(
        "\nPaper observations to compare against: larger tiles raise in-flight memory\n\
         instructions and power; CPI rises once DRAM cannot keep up; IPC improves\n\
         from Tile-4 to Tile-16 but saturates at Tile-64 under the 128 GB/s ceiling."
    );
}
