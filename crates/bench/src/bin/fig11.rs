//! Figure 11 — architectural impact of the tile configuration on a GCN
//! (Cora) workload, normalised to Tile-4.
//!
//! The three tile sizes are a `neura_lab` sweep executed in parallel. Run
//! with `cargo run --release -p neura_bench --bin fig11` (add `--json
//! [path]` for a machine-readable artifact).

use neura_bench::{fmt, print_table, scaled_matrix_by_name};
use neura_chip::accelerator::Accelerator;
use neura_chip::config::{ChipConfig, TileSize};
use neura_chip::power::PowerModel;
use neura_lab::{ArtifactSession, ExperimentSpec, RunRecord, Runner, SweepGrid};
use neura_sparse::gen::feature_matrix;

fn main() {
    let mut session = ArtifactSession::from_args("fig11", neura_bench::scale_multiplier());
    let mut a = scaled_matrix_by_name("cora", 4);
    a.row_normalize();
    let x = feature_matrix(a.cols(), 16, 3);
    let power_model = PowerModel::calibrated();

    let spec = ExperimentSpec::new(
        "fig11",
        ChipConfig::tile_16(),
        SweepGrid::new().datasets(["cora"]).tile_sizes(TileSize::ALL),
    );
    let results = Runner::from_env().run_spec(&spec, |point| {
        let mut chip = Accelerator::new(point.config.clone());
        chip.run_aggregation(&a, &x).expect("simulation drains").report
    });

    struct Sample {
        tile: &'static str,
        stall: f64,
        cpi: f64,
        ipc: f64,
        in_flight: f64,
        power: f64,
        busy: f64,
    }

    let mut samples = Vec::new();
    for (point, report) in &results {
        let power = power_model.breakdown(&point.config).total_power_w();
        samples.push(Sample {
            tile: point.config.tile_size.name(),
            stall: report.core_stall_cycles as f64,
            cpi: report.cpi,
            ipc: report.ipc,
            in_flight: report.avg_in_flight_mem,
            power,
            busy: report.core_busy_cycles as f64,
        });
        let mut record = RunRecord::new(&point.id)
            .unit_metric("power_w", power, "W")
            .metric("core_stall_cycles", report.core_stall_cycles as f64)
            .metric("core_busy_cycles", report.core_busy_cycles as f64)
            .metric("avg_in_flight_mem", report.avg_in_flight_mem)
            .with_execution(report);
        record.params = point.params();
        session.push(record);
    }

    let base = &samples[0];
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.tile.to_string(),
                fmt(s.stall / base.stall.max(1.0), 3),
                fmt(s.cpi / base.cpi.max(1e-9), 3),
                fmt(s.ipc / base.ipc.max(1e-9), 3),
                fmt(s.in_flight / base.in_flight.max(1e-9), 3),
                fmt(s.power / base.power.max(1e-9), 3),
                fmt(s.busy / base.busy.max(1.0), 3),
            ]
        })
        .collect();
    print_table(
        "Figure 11: architectural impact of tile configuration on Cora (normalised to Tile-4)",
        &["Config", "Stall cycles", "CPI", "IPC", "In-flight mem instx", "Power", "Busy cycles"],
        &rows,
    );
    println!(
        "\nPaper observations to compare against: larger tiles raise in-flight memory\n\
         instructions and power; CPI rises once DRAM cannot keep up; IPC improves\n\
         from Tile-4 to Tile-16 but saturates at Tile-64 under the 128 GB/s ceiling."
    );

    session.finish();
}
