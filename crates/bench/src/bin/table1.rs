//! Table 1 — SpGEMM memory-bloat analysis across the hyper-sparse graph suite.
//!
//! Regenerates, for a synthetic analog of every Table-1 dataset, the bloat
//! percent of the self-product `A × A` and prints it next to the paper's
//! reported value. The per-dataset analysis runs on the `neura_lab`
//! parallel runner. Run with
//! `cargo run --release -p neura_bench --bin table1` (add `--json [path]`
//! for a machine-readable artifact).

use neura_bench::{fmt, print_table, scaled_matrix, MODEL_SCALE};
use neura_lab::{golden, ArtifactSession, RunRecord, Runner};
use neura_sparse::{bloat, DatasetCatalog};

fn main() {
    let scale_mult = neura_bench::scale_multiplier();
    let mut session = ArtifactSession::from_args("table1", scale_mult);

    let datasets = DatasetCatalog::spgemm_suite();
    let analyses = Runner::from_env().run(&datasets, |_, dataset| {
        let a = scaled_matrix(dataset, MODEL_SCALE);
        let report = bloat::analyze_square(&a);
        (a.rows(), a.nnz(), report.bloat_percent)
    });

    let mut rows = Vec::new();
    for (dataset, (sim_nodes, sim_edges, bloat_percent)) in datasets.iter().zip(&analyses) {
        rows.push(vec![
            dataset.name.to_string(),
            dataset.nodes.to_string(),
            dataset.edges.to_string(),
            fmt(dataset.sparsity_percent, 4),
            sim_nodes.to_string(),
            sim_edges.to_string(),
            fmt(*bloat_percent, 2),
            dataset.paper_bloat_percent.map(|b| fmt(b, 2)).unwrap_or_else(|| "-".to_string()),
        ]);
        let mut record = RunRecord::new(format!("table1/{}", dataset.name))
            .param("dataset", dataset.name)
            .metric("sim_nodes", *sim_nodes as f64)
            .metric("sim_edges", *sim_edges as f64)
            .unit_metric("bloat_percent", *bloat_percent, "%")
            .unit_metric("sparsity_percent_paper", dataset.sparsity_percent, "%");
        if let Some(paper) = dataset.paper_bloat_percent {
            record = record.unit_metric("bloat_percent_paper", paper, "%");
        }
        session.push(record);
    }
    print_table(
        "Table 1: SpGEMM memory bloat (synthetic analogs, scaled)",
        &[
            "Dataset",
            "Nodes (paper)",
            "Edges (paper)",
            "Sparsity % (paper)",
            "Nodes (sim)",
            "Edges (sim)",
            "Bloat % (measured)",
            "Bloat % (paper)",
        ],
        &rows,
    );
    println!(
        "\nNote: analogs are scaled down by {MODEL_SCALE}x with average degree preserved; \
         the bloat ordering across datasets is the quantity being reproduced."
    );

    let artifact = session.finish();
    golden::check_order(
        &artifact,
        &golden::table1_bloat_order(),
        golden::Mode::from_scale_mult(scale_mult),
    )
    .print_and_enforce("Table 1");
}
