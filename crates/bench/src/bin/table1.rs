//! Table 1 — SpGEMM memory-bloat analysis across the hyper-sparse graph suite.
//!
//! Regenerates, for a synthetic analog of every Table-1 dataset, the bloat
//! percent of the self-product `A × A` and prints it next to the paper's
//! reported value.  Run with `cargo run --release -p neura_bench --bin table1`.

use neura_bench::{fmt, print_table, scaled_matrix, MODEL_SCALE};
use neura_sparse::{bloat, DatasetCatalog};

fn main() {
    let mut rows = Vec::new();
    for dataset in DatasetCatalog::spgemm_suite() {
        let a = scaled_matrix(&dataset, MODEL_SCALE);
        let report = bloat::analyze_square(&a);
        rows.push(vec![
            dataset.name.to_string(),
            dataset.nodes.to_string(),
            dataset.edges.to_string(),
            fmt(dataset.sparsity_percent, 4),
            a.rows().to_string(),
            a.nnz().to_string(),
            fmt(report.bloat_percent, 2),
            dataset.paper_bloat_percent.map(|b| fmt(b, 2)).unwrap_or_else(|| "-".to_string()),
        ]);
    }
    print_table(
        "Table 1: SpGEMM memory bloat (synthetic analogs, scaled)",
        &[
            "Dataset",
            "Nodes (paper)",
            "Edges (paper)",
            "Sparsity % (paper)",
            "Nodes (sim)",
            "Edges (sim)",
            "Bloat % (measured)",
            "Bloat % (paper)",
        ],
        &rows,
    );
    println!(
        "\nNote: analogs are scaled down by {MODEL_SCALE}x with average degree preserved; \
         the bloat ordering across datasets is the quantity being reproduced."
    );
}
