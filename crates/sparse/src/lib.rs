//! Sparse matrix formats, reference SpGEMM algorithms, graph generators and
//! the synthetic dataset catalog used throughout the NeuraChip reproduction.
//!
//! The NeuraChip paper (ISCA 2024) evaluates a decoupled spatial accelerator
//! on sparse general matrix-matrix multiplication (SpGEMM) and on the
//! aggregation stage of Graph Convolutional Networks.  This crate provides
//! every piece of that workload substrate:
//!
//! * [`CooMatrix`], [`CsrMatrix`], [`CscMatrix`] and [`DenseMatrix`] storage
//!   formats with loss-less conversions between them,
//! * reference SpGEMM implementations for the four dataflows discussed in
//!   the paper (inner product, outer product, row-wise/Gustavson and the
//!   tiled Gustavson variant used by NeuraChip) in [`spgemm`],
//! * sparse × dense multiplication ([`spmm`]) used by the GCN combination
//!   stage,
//! * memory-bloat analysis reproducing Table 1 ([`bloat`]),
//! * random graph generators (Erdős–Rényi, R-MAT, power-law) in [`gen`],
//! * a catalog of synthetic stand-ins for the paper's SNAP/SuiteSparse
//!   datasets in [`datasets`], and
//! * structural statistics (degree distributions, imbalance metrics) in
//!   [`stats`].
//!
//! # Quick example
//!
//! ```
//! use neura_sparse::{gen::GraphGenerator, spgemm, bloat};
//!
//! // A small scale-free graph, squared (the aggregation-style SpGEMM A×A).
//! let a = GraphGenerator::power_law(500, 4_000, 2.2, 7).generate();
//! let a_csr = a.to_csr();
//! let a_csc = a.to_csc();
//! let c = spgemm::gustavson(&a_csr, &a_csr);
//! let report = bloat::analyze(&a_csr, &a_csr);
//! assert_eq!(c.nnz(), report.output_nnz);
//! assert!(report.intermediate_partial_products >= report.output_nnz as u64);
//! let _ = a_csc; // CSC form is what NeuraChip streams for matrix A.
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bloat;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod datasets;
pub mod dense;
pub mod error;
pub mod gen;
pub mod spgemm;
pub mod spmm;
pub mod stats;

pub use bloat::BloatReport;
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use datasets::{Dataset, DatasetCatalog};
pub use dense::DenseMatrix;
pub use error::SparseError;

/// Convenient alias for results returned by fallible constructors in this crate.
pub type Result<T> = std::result::Result<T, SparseError>;
