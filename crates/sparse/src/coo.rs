//! Coordinate-list (COO / triplet) sparse matrix.
//!
//! COO is the natural construction format: graph generators and dataset
//! loaders emit `(row, col, value)` triplets which are then converted to the
//! compressed formats ([`CsrMatrix`](crate::CsrMatrix) /
//! [`CscMatrix`](crate::CscMatrix)) that the NeuraChip compiler consumes.

use crate::{CscMatrix, CsrMatrix, DenseMatrix, Result, SparseError};
use serde::{Deserialize, Serialize};

/// A sparse matrix in coordinate (triplet) format.
///
/// Duplicate coordinates are allowed while building; they are summed when
/// converting to CSR/CSC/dense, mirroring the semantics of standard sparse
/// assembly routines.
///
/// # Examples
///
/// ```
/// use neura_sparse::CooMatrix;
///
/// let mut m = CooMatrix::new(2, 3);
/// m.push(0, 1, 2.0).unwrap();
/// m.push(1, 2, -1.0).unwrap();
/// let csr = m.to_csr();
/// assert_eq!(csr.nnz(), 2);
/// assert_eq!(csr.get(0, 1), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty COO matrix with the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix { rows, cols, entries: Vec::new() }
    }

    /// Creates a COO matrix from pre-assembled triplets.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if any triplet lies outside
    /// the declared shape.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: Vec<(usize, usize, f64)>,
    ) -> Result<Self> {
        for &(r, c, _) in &triplets {
            if r >= rows || c >= cols {
                return Err(SparseError::IndexOutOfBounds { row: r, col: c, rows, cols });
            }
        }
        Ok(CooMatrix { rows, cols, entries: triplets })
    }

    /// Appends a single entry.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if the coordinate lies
    /// outside the matrix shape.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no triplets are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the stored `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, f64)> {
        self.entries.iter()
    }

    /// Sorts entries row-major and sums duplicate coordinates in place.
    pub fn dedup(&mut self) {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        self.entries = merged;
    }

    /// Converts to compressed sparse row format, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.clone();
        sorted.dedup();
        let mut row_ptr = vec![0usize; self.rows + 1];
        for &(r, _, _) in &sorted.entries {
            row_ptr[r + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx: Vec<usize> = sorted.entries.iter().map(|&(_, c, _)| c).collect();
        let values: Vec<f64> = sorted.entries.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix::from_raw_parts(self.rows, self.cols, row_ptr, col_idx, values)
            .expect("COO conversion always builds a structurally valid CSR")
    }

    /// Converts to compressed sparse column format, summing duplicates.
    pub fn to_csc(&self) -> CscMatrix {
        let mut sorted = self.clone();
        sorted.dedup();
        // Re-sort column-major.
        sorted.entries.sort_unstable_by_key(|a| (a.1, a.0));
        let mut col_ptr = vec![0usize; self.cols + 1];
        for &(_, c, _) in &sorted.entries {
            col_ptr[c + 1] += 1;
        }
        for i in 0..self.cols {
            col_ptr[i + 1] += col_ptr[i];
        }
        let row_idx: Vec<usize> = sorted.entries.iter().map(|&(r, _, _)| r).collect();
        let values: Vec<f64> = sorted.entries.iter().map(|&(_, _, v)| v).collect();
        CscMatrix::from_raw_parts(self.rows, self.cols, col_ptr, row_idx, values)
            .expect("COO conversion always builds a structurally valid CSC")
    }

    /// Converts to a dense matrix, summing duplicates.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut dense = DenseMatrix::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.entries {
            *dense.get_mut(r, c) += v;
        }
        dense
    }

    /// Fraction of entries that are zero (sparsity), expressed in `[0, 1]`.
    ///
    /// Duplicate coordinates are merged before counting so the result matches
    /// the compressed representations.
    pub fn sparsity(&self) -> f64 {
        let total = (self.rows * self.cols) as f64;
        if total == 0.0 {
            return 0.0;
        }
        let mut unique = self.clone();
        unique.dedup();
        1.0 - unique.nnz() as f64 / total
    }
}

impl FromIterator<(usize, usize, f64)> for CooMatrix {
    /// Builds a matrix whose shape is the tight bounding box of the triplets.
    fn from_iter<I: IntoIterator<Item = (usize, usize, f64)>>(iter: I) -> Self {
        let entries: Vec<(usize, usize, f64)> = iter.into_iter().collect();
        let rows = entries.iter().map(|&(r, _, _)| r + 1).max().unwrap_or(0);
        let cols = entries.iter().map(|&(_, c, _)| c + 1).max().unwrap_or(0);
        CooMatrix { rows, cols, entries }
    }
}

impl Extend<(usize, usize, f64)> for CooMatrix {
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v).expect("extended entry must lie inside the matrix shape");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        let mut m = CooMatrix::new(3, 4);
        m.push(0, 0, 1.0).unwrap();
        m.push(0, 3, 2.0).unwrap();
        m.push(1, 1, 3.0).unwrap();
        m.push(2, 2, 4.0).unwrap();
        m
    }

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut m = CooMatrix::new(2, 2);
        assert!(matches!(m.push(2, 0, 1.0), Err(SparseError::IndexOutOfBounds { .. })));
        assert!(matches!(m.push(0, 2, 1.0), Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn from_triplets_validates() {
        let err = CooMatrix::from_triplets(1, 1, vec![(0, 5, 1.0)]);
        assert!(err.is_err());
        let ok = CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        assert_eq!(ok.nnz(), 2);
    }

    #[test]
    fn dedup_sums_duplicates() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.5).unwrap();
        m.push(0, 0, 2.5).unwrap();
        m.push(1, 1, 1.0).unwrap();
        m.dedup();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense().get(0, 0), 4.0);
    }

    #[test]
    fn csr_round_trip_preserves_values() {
        let m = sample();
        let csr = m.to_csr();
        let dense = m.to_dense();
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(csr.get(r, c), dense.get(r, c), "mismatch at ({r},{c})");
            }
        }
    }

    #[test]
    fn csc_round_trip_preserves_values() {
        let m = sample();
        let csc = m.to_csc();
        let dense = m.to_dense();
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(csc.get(r, c), dense.get(r, c), "mismatch at ({r},{c})");
            }
        }
    }

    #[test]
    fn sparsity_counts_unique_coordinates() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0).unwrap();
        m.push(0, 0, 1.0).unwrap();
        assert!((m.sparsity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_infers_shape() {
        let m: CooMatrix = vec![(0, 0, 1.0), (4, 2, 2.0)].into_iter().collect();
        assert_eq!(m.rows(), 5);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn empty_matrix_behaves() {
        let m = CooMatrix::new(0, 0);
        assert!(m.is_empty());
        assert_eq!(m.sparsity(), 0.0);
        assert_eq!(m.to_csr().nnz(), 0);
    }
}
