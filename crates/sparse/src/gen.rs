//! Random graph generators used to synthesise the paper's workloads.
//!
//! The paper evaluates on SNAP / SuiteSparse matrices that are not shipped
//! with this repository.  Per the reproduction's substitution rule we
//! synthesise graphs whose structural statistics (node count, edge count,
//! degree skew) match the original datasets.  Three generators cover the
//! spectrum of structures seen in Table 1:
//!
//! * [`GraphGenerator::erdos_renyi`] — uniform random structure (meshes and
//!   near-regular matrices such as `m133-b3`, `roadNet-CA`),
//! * [`GraphGenerator::power_law`] — heavy-tailed degree distributions
//!   (social networks such as `facebook`, `wiki-Vote`),
//! * [`GraphGenerator::rmat`] — Kronecker-style communities (web graphs such
//!   as `web-Google`, `cit-Patents`).

use crate::CooMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The family of random-graph model to draw from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GraphModel {
    /// Erdős–Rényi G(n, p): every edge independently present with probability `p`.
    ErdosRenyi {
        /// Edge probability in `[0, 1]`.
        p: f64,
    },
    /// Power-law (scale-free) degree distribution with the given exponent.
    PowerLaw {
        /// Target number of edges.
        edges: usize,
        /// Degree-distribution exponent (typical social graphs: 2.0–2.5).
        exponent: f64,
    },
    /// Recursive-matrix (R-MAT) generator over a `2^scale` vertex set.
    Rmat {
        /// Target number of edges.
        edges: usize,
        /// R-MAT quadrant probabilities (a, b, c); d = 1 - a - b - c.
        probabilities: (f64, f64, f64),
    },
    /// Fully dense matrix (used for the dense-matrix heat map in Figure 13).
    Dense,
    /// Banded/diagonal structure (FEM-style matrices such as `filter3D`).
    Banded {
        /// Half bandwidth: entries exist for |i - j| <= bandwidth.
        bandwidth: usize,
    },
}

/// Configurable, seeded graph generator.
///
/// # Examples
///
/// ```
/// use neura_sparse::gen::GraphGenerator;
///
/// let graph = GraphGenerator::rmat(8, 2_000, 42).generate();
/// assert_eq!(graph.rows(), 256);
/// assert!(graph.nnz() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphGenerator {
    nodes: usize,
    model: GraphModel,
    seed: u64,
    self_loops: bool,
    weighted: bool,
}

impl GraphGenerator {
    /// Erdős–Rényi generator over `nodes` vertices with edge probability `p`.
    pub fn erdos_renyi(nodes: usize, p: f64, seed: u64) -> Self {
        GraphGenerator {
            nodes,
            model: GraphModel::ErdosRenyi { p: p.clamp(0.0, 1.0) },
            seed,
            self_loops: true,
            weighted: false,
        }
    }

    /// Power-law generator with roughly `edges` edges and the given exponent.
    pub fn power_law(nodes: usize, edges: usize, exponent: f64, seed: u64) -> Self {
        GraphGenerator {
            nodes,
            model: GraphModel::PowerLaw { edges, exponent },
            seed,
            self_loops: true,
            weighted: false,
        }
    }

    /// R-MAT generator over `2^scale` vertices with roughly `edges` edges and
    /// the standard (0.57, 0.19, 0.19) quadrant probabilities.
    pub fn rmat(scale: u32, edges: usize, seed: u64) -> Self {
        GraphGenerator {
            nodes: 1usize << scale,
            model: GraphModel::Rmat { edges, probabilities: (0.57, 0.19, 0.19) },
            seed,
            self_loops: true,
            weighted: false,
        }
    }

    /// Fully dense square matrix of the given order.
    pub fn dense(nodes: usize, seed: u64) -> Self {
        GraphGenerator { nodes, model: GraphModel::Dense, seed, self_loops: true, weighted: true }
    }

    /// Banded matrix with the given half-bandwidth.
    pub fn banded(nodes: usize, bandwidth: usize, seed: u64) -> Self {
        GraphGenerator {
            nodes,
            model: GraphModel::Banded { bandwidth },
            seed,
            self_loops: true,
            weighted: false,
        }
    }

    /// Generator with an explicit [`GraphModel`].
    pub fn with_model(nodes: usize, model: GraphModel, seed: u64) -> Self {
        GraphGenerator { nodes, model, seed, self_loops: true, weighted: false }
    }

    /// Whether edge weights are drawn uniformly from `(0, 1]` instead of 1.0.
    pub fn weighted(mut self, weighted: bool) -> Self {
        self.weighted = weighted;
        self
    }

    /// Whether self loops (diagonal entries) may be generated.
    pub fn self_loops(mut self, allowed: bool) -> Self {
        self.self_loops = allowed;
        self
    }

    /// Number of vertices the generated adjacency matrix will have.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Generates the adjacency matrix (duplicates merged).
    pub fn generate(&self) -> CooMatrix {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut coo = CooMatrix::new(self.nodes, self.nodes);
        match self.model {
            GraphModel::ErdosRenyi { p } => self.gen_erdos_renyi(&mut rng, &mut coo, p),
            GraphModel::PowerLaw { edges, exponent } => {
                self.gen_power_law(&mut rng, &mut coo, edges, exponent)
            }
            GraphModel::Rmat { edges, probabilities } => {
                self.gen_rmat(&mut rng, &mut coo, edges, probabilities)
            }
            GraphModel::Dense => self.gen_dense(&mut rng, &mut coo),
            GraphModel::Banded { bandwidth } => self.gen_banded(&mut rng, &mut coo, bandwidth),
        }
        coo.dedup();
        coo
    }

    fn edge_weight(&self, rng: &mut StdRng) -> f64 {
        if self.weighted {
            rng.gen_range(0.01..=1.0)
        } else {
            1.0
        }
    }

    fn accept(&self, src: usize, dst: usize) -> bool {
        self.self_loops || src != dst
    }

    fn gen_erdos_renyi(&self, rng: &mut StdRng, coo: &mut CooMatrix, p: f64) {
        if self.nodes == 0 || p <= 0.0 {
            return;
        }
        // Geometric skipping so sparse graphs are generated in O(nnz) work.
        let total = self.nodes * self.nodes;
        let mut idx: usize = 0;
        while idx < total {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let skip = if p >= 1.0 { 0 } else { (u.ln() / (1.0 - p).ln()).floor() as usize };
            idx = idx.saturating_add(skip);
            if idx >= total {
                break;
            }
            let (src, dst) = (idx / self.nodes, idx % self.nodes);
            if self.accept(src, dst) {
                let w = self.edge_weight(rng);
                coo.push(src, dst, w).expect("generated index is in bounds");
            }
            idx += 1;
        }
    }

    fn gen_power_law(&self, rng: &mut StdRng, coo: &mut CooMatrix, edges: usize, exponent: f64) {
        if self.nodes == 0 {
            return;
        }
        // Zipf-like sampling of endpoints: node i has weight (i+1)^-alpha after
        // a random permutation, producing a heavy-tailed degree sequence.
        let alpha = exponent.max(1.0) - 1.0;
        let mut perm: Vec<usize> = (0..self.nodes).collect();
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let weights: Vec<f64> =
            (0..self.nodes).map(|i| 1.0 / ((i + 1) as f64).powf(alpha)).collect();
        let cumulative: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        let total = *cumulative.last().expect("nodes > 0");
        let sample = |rng: &mut StdRng| -> usize {
            let u = rng.gen_range(0.0..total);
            let pos = cumulative.partition_point(|&c| c < u);
            perm[pos.min(self.nodes - 1)]
        };
        for _ in 0..edges {
            let src = sample(rng);
            let dst = rng.gen_range(0..self.nodes);
            if self.accept(src, dst) {
                let w = self.edge_weight(rng);
                coo.push(src, dst, w).expect("generated index is in bounds");
            }
        }
    }

    fn gen_rmat(
        &self,
        rng: &mut StdRng,
        coo: &mut CooMatrix,
        edges: usize,
        (a, b, c): (f64, f64, f64),
    ) {
        if self.nodes == 0 {
            return;
        }
        let scale = (self.nodes as f64).log2().ceil() as u32;
        for _ in 0..edges {
            let (mut row, mut col) = (0usize, 0usize);
            for level in (0..scale).rev() {
                let r: f64 = rng.gen();
                // Add slight per-level noise so repeated quadrants are not identical.
                let noise = 0.05 * (rng.gen::<f64>() - 0.5);
                let (aa, bb, cc) = (a + noise, b, c);
                let bit = 1usize << level;
                if r < aa {
                    // top-left quadrant
                } else if r < aa + bb {
                    col |= bit;
                } else if r < aa + bb + cc {
                    row |= bit;
                } else {
                    row |= bit;
                    col |= bit;
                }
            }
            let (src, dst) = (row.min(self.nodes - 1), col.min(self.nodes - 1));
            if self.accept(src, dst) {
                let w = self.edge_weight(rng);
                coo.push(src, dst, w).expect("generated index is in bounds");
            }
        }
    }

    fn gen_dense(&self, rng: &mut StdRng, coo: &mut CooMatrix) {
        for r in 0..self.nodes {
            for c in 0..self.nodes {
                let w = self.edge_weight(rng);
                coo.push(r, c, w).expect("generated index is in bounds");
            }
        }
    }

    fn gen_banded(&self, rng: &mut StdRng, coo: &mut CooMatrix, bandwidth: usize) {
        for r in 0..self.nodes {
            let lo = r.saturating_sub(bandwidth);
            let hi = (r + bandwidth).min(self.nodes.saturating_sub(1));
            for c in lo..=hi {
                if self.accept(r, c) {
                    let w = self.edge_weight(rng);
                    coo.push(r, c, w).expect("generated index is in bounds");
                }
            }
        }
    }
}

/// Generates a dense feature matrix (`nodes × features`) with values drawn
/// uniformly from `[-1, 1)`, the input `X` of a GCN layer.
pub fn feature_matrix(nodes: usize, features: usize, seed: u64) -> crate::DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..nodes * features).map(|_| rng.gen_range(-1.0..1.0)).collect();
    crate::DenseMatrix::from_vec(nodes, features, data).expect("length matches by construction")
}

/// Generates a dense weight matrix (`in_features × out_features`) with Xavier-like scaling.
pub fn weight_matrix(in_features: usize, out_features: usize, seed: u64) -> crate::DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let scale = (2.0 / (in_features + out_features) as f64).sqrt();
    let data: Vec<f64> =
        (0..in_features * out_features).map(|_| rng.gen_range(-scale..scale)).collect();
    crate::DenseMatrix::from_vec(in_features, out_features, data)
        .expect("length matches by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = GraphGenerator::rmat(7, 500, 99).generate();
        let b = GraphGenerator::rmat(7, 500, 99).generate();
        assert_eq!(a, b);
        let c = GraphGenerator::rmat(7, 500, 100).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn erdos_renyi_edge_count_close_to_expectation() {
        let n = 200usize;
        let p = 0.05;
        let g = GraphGenerator::erdos_renyi(n, p, 7).generate();
        let expected = (n * n) as f64 * p;
        let actual = g.nnz() as f64;
        assert!(
            (actual - expected).abs() < expected * 0.25,
            "expected ~{expected} edges, got {actual}"
        );
    }

    #[test]
    fn power_law_produces_heavy_tail() {
        let g = GraphGenerator::power_law(500, 5000, 2.1, 3).generate().to_csr();
        let s = degree_stats(&g);
        assert!(s.max as f64 > 4.0 * s.mean, "max degree {} vs mean {}", s.max, s.mean);
    }

    #[test]
    fn dense_generator_fills_every_entry() {
        let g = GraphGenerator::dense(12, 5).generate();
        assert_eq!(g.nnz(), 144);
    }

    #[test]
    fn banded_generator_respects_bandwidth() {
        let g = GraphGenerator::banded(30, 2, 1).generate();
        for &(r, c, _) in g.iter() {
            assert!(r.abs_diff(c) <= 2);
        }
        assert!(g.nnz() >= 30);
    }

    #[test]
    fn self_loop_flag_removes_diagonal() {
        let g = GraphGenerator::erdos_renyi(50, 0.2, 11).self_loops(false).generate();
        assert!(g.iter().all(|&(r, c, _)| r != c));
    }

    #[test]
    fn weighted_flag_produces_non_unit_values() {
        let g = GraphGenerator::erdos_renyi(40, 0.2, 11).weighted(true).generate();
        assert!(g.iter().any(|&(_, _, v)| v != 1.0));
    }

    #[test]
    fn rmat_scale_sets_node_count() {
        let gen = GraphGenerator::rmat(5, 100, 0);
        assert_eq!(gen.nodes(), 32);
    }

    #[test]
    fn feature_and_weight_matrices_have_requested_shapes() {
        let x = feature_matrix(10, 16, 0);
        let w = weight_matrix(16, 4, 0);
        assert_eq!((x.rows(), x.cols()), (10, 16));
        assert_eq!((w.rows(), w.cols()), (16, 4));
    }

    #[test]
    fn zero_nodes_is_harmless() {
        let g = GraphGenerator::erdos_renyi(0, 0.5, 1).generate();
        assert_eq!(g.nnz(), 0);
        let g = GraphGenerator::power_law(0, 10, 2.0, 1).generate();
        assert_eq!(g.nnz(), 0);
    }
}
