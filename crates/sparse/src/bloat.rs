//! Memory-bloat analysis (Equation 1 / Table 1 of the paper).
//!
//! "Bloat percent" measures how many intermediate partial products an SpGEMM
//! produces relative to the number of non-zeros that survive in the output:
//!
//! ```text
//! bloat% = (pp_interim − nnz_output) / nnz_output × 100
//! ```
//!
//! Large bloat means an accelerator following Gustavson's (or the outer
//! product) dataflow must hold many short-lived partial products on chip,
//! which motivates NeuraChip's rolling-eviction HashPad.

use crate::spgemm;
use crate::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Result of the memory-bloat analysis of one SpGEMM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BloatReport {
    /// Number of intermediate partial products (`pp_interim` in Eq. 1).
    pub intermediate_partial_products: u64,
    /// Number of structural non-zeros in the output matrix (`nnz_output`).
    pub output_nnz: usize,
    /// Bloat percent as defined by Equation 1.
    pub bloat_percent: f64,
    /// Sparsity of the left operand, in percent (as reported in Table 1).
    pub input_sparsity_percent: f64,
    /// Number of rows of the left operand (node count for graph datasets).
    pub node_count: usize,
    /// Number of non-zeros of the left operand (edge count for graph datasets).
    pub edge_count: usize,
}

impl BloatReport {
    /// Average number of partial products that merge into one output element.
    pub fn average_reduction_fanin(&self) -> f64 {
        if self.output_nnz == 0 {
            0.0
        } else {
            self.intermediate_partial_products as f64 / self.output_nnz as f64
        }
    }
}

/// Analyses the memory bloat of `A × B` without materialising intermediates
/// beyond the row-wise accumulator.
pub fn analyze(a: &CsrMatrix, b: &CsrMatrix) -> BloatReport {
    let (_, stats) = spgemm::multiply_counting(a, b);
    BloatReport {
        intermediate_partial_products: stats.multiplications,
        output_nnz: stats.output_nnz,
        bloat_percent: stats.bloat_percent(),
        input_sparsity_percent: a.sparsity() * 100.0,
        node_count: a.rows(),
        edge_count: a.nnz(),
    }
}

/// Analyses the memory bloat of the self-product `A × A`, the SpGEMM
/// configuration used in Table 1.
pub fn analyze_square(a: &CsrMatrix) -> BloatReport {
    analyze(a, a)
}

/// Computes only the intermediate partial-product count of `A × B`
/// (`Σ_k col_nnz_A(k) · row_nnz_B(k)`), without running the multiplication.
pub fn partial_product_count(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let a_csc = a.to_csc();
    (0..a.cols()).map(|k| a_csc.col_nnz(k) as u64 * b.row_nnz(k) as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphGenerator;

    #[test]
    fn bloat_formula_matches_definition() {
        let a = GraphGenerator::power_law(200, 1500, 2.2, 5).generate().to_csr();
        let report = analyze_square(&a);
        let expected = (report.intermediate_partial_products as f64 - report.output_nnz as f64)
            / report.output_nnz as f64
            * 100.0;
        assert!((report.bloat_percent - expected).abs() < 1e-9);
        assert!(report.bloat_percent >= 0.0);
    }

    #[test]
    fn closed_form_partial_product_count_agrees_with_counting() {
        let a = GraphGenerator::rmat(7, 800, 3).generate().to_csr();
        let b = GraphGenerator::rmat(7, 700, 4).generate().to_csr();
        let closed_form = partial_product_count(&a, &b);
        let report = analyze(&a, &b);
        assert_eq!(closed_form, report.intermediate_partial_products);
    }

    #[test]
    fn identity_has_zero_bloat() {
        let id = CsrMatrix::identity(64);
        let report = analyze_square(&id);
        assert_eq!(report.bloat_percent, 0.0);
        assert_eq!(report.intermediate_partial_products, 64);
        assert_eq!(report.output_nnz, 64);
        assert_eq!(report.average_reduction_fanin(), 1.0);
    }

    #[test]
    fn denser_graphs_have_higher_bloat() {
        let sparse = GraphGenerator::erdos_renyi(300, 0.01, 9).generate().to_csr();
        let dense = GraphGenerator::erdos_renyi(300, 0.08, 9).generate().to_csr();
        let sparse_bloat = analyze_square(&sparse).bloat_percent;
        let dense_bloat = analyze_square(&dense).bloat_percent;
        assert!(dense_bloat > sparse_bloat);
    }

    #[test]
    fn report_records_input_statistics() {
        let a = GraphGenerator::erdos_renyi(100, 0.05, 13).generate().to_csr();
        let report = analyze_square(&a);
        assert_eq!(report.node_count, 100);
        assert_eq!(report.edge_count, a.nnz());
        assert!(report.input_sparsity_percent > 90.0);
    }
}
