//! Compressed Sparse Column (CSC) matrix.
//!
//! In the NeuraChip dataflow the *adjacency* matrix (matrix `A` of the
//! SpGEMM) is stored in CSC so that the tiled Gustavson `MMH4` instruction
//! can pull four elements of one column of `A` at a time (Section 3.1).

use crate::{CooMatrix, CsrMatrix, DenseMatrix, Result, SparseError};
use serde::{Deserialize, Serialize};

/// A sparse matrix in compressed sparse column format.
///
/// Structural invariants mirror [`CsrMatrix`](crate::CsrMatrix) with the
/// roles of rows and columns exchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from its raw arrays, validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::MalformedPointers`], [`SparseError::LengthMismatch`]
    /// or [`SparseError::IndexOutOfBounds`] when the arrays are inconsistent.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if col_ptr.len() != cols + 1 {
            return Err(SparseError::MalformedPointers {
                detail: format!("col_ptr has {} entries, expected {}", col_ptr.len(), cols + 1),
            });
        }
        if row_idx.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                indices: row_idx.len(),
                values: values.len(),
            });
        }
        if col_ptr[0] != 0 {
            return Err(SparseError::MalformedPointers {
                detail: "col_ptr[0] must be 0".to_string(),
            });
        }
        if *col_ptr.last().expect("col_ptr is non-empty") != row_idx.len() {
            return Err(SparseError::MalformedPointers {
                detail: format!(
                    "col_ptr terminates at {} but there are {} stored values",
                    col_ptr.last().unwrap(),
                    row_idx.len()
                ),
            });
        }
        for w in col_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::MalformedPointers {
                    detail: "col_ptr must be monotonically non-decreasing".to_string(),
                });
            }
        }
        for (c, w) in col_ptr.windows(2).enumerate() {
            let slice = &row_idx[w[0]..w[1]];
            for pair in slice.windows(2) {
                if pair[1] <= pair[0] {
                    return Err(SparseError::MalformedPointers {
                        detail: format!("column {c} has unsorted or duplicate row indices"),
                    });
                }
            }
            for &r in slice {
                if r >= rows {
                    return Err(SparseError::IndexOutOfBounds { row: r, col: c, rows, cols });
                }
            }
        }
        Ok(CscMatrix { rows, cols, col_ptr, row_idx, values })
    }

    /// Creates an empty matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CscMatrix {
            rows,
            cols,
            col_ptr: vec![0; cols + 1],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Fraction of the matrix that is zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        let total = (self.rows * self.cols) as f64;
        if total == 0.0 {
            0.0
        } else {
            1.0 - self.nnz() as f64 / total
        }
    }

    /// The column pointer array (`cols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row index array (`nnz` entries).
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// The stored values (`nnz` entries).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Row indices and values of column `c` as parallel slices.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> (&[usize], &[f64]) {
        let start = self.col_ptr[c];
        let end = self.col_ptr[c + 1];
        (&self.row_idx[start..end], &self.values[start..end])
    }

    /// Number of stored entries in column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// Value at `(row, col)`, or `0.0` when the entry is not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if row >= self.rows || col >= self.cols {
            return 0.0;
        }
        let (rows_in_col, vals) = self.col(col);
        match rows_in_col.binary_search(&row) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over all stored entries as `(row, col, value)` in
    /// column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.cols).flat_map(move |c| {
            let (rows, vals) = self.col(c);
            rows.iter().zip(vals.iter()).map(move |(&r, &v)| (r, c, v))
        })
    }

    /// Converts to coordinate format.
    pub fn to_coo(&self) -> CooMatrix {
        CooMatrix::from_triplets(self.rows, self.cols, self.iter().collect())
            .expect("CSC entries are always in bounds")
    }

    /// Converts to compressed sparse row format.
    pub fn to_csr(&self) -> CsrMatrix {
        self.to_coo().to_csr()
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut dense = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            *dense.get_mut(r, c) = v;
        }
        dense
    }

    /// Largest number of stored entries in any column (an imbalance indicator).
    pub fn max_col_nnz(&self) -> usize {
        (0..self.cols).map(|c| self.col_nnz(c)).max().unwrap_or(0)
    }
}

impl From<CooMatrix> for CscMatrix {
    fn from(coo: CooMatrix) -> Self {
        coo.to_csc()
    }
}

impl From<CsrMatrix> for CscMatrix {
    fn from(csr: CsrMatrix) -> Self {
        csr.to_csc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [1 0 2]
        // [0 0 3]
        // [4 5 0]
        let coo = CooMatrix::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (1, 2, 3.0), (2, 0, 4.0), (2, 1, 5.0)],
        )
        .unwrap();
        coo.to_csc()
    }

    #[test]
    fn structure_is_column_major() {
        let m = sample();
        assert_eq!(m.col(0), (&[0usize, 2][..], &[1.0, 4.0][..]));
        assert_eq!(m.col_nnz(1), 1);
        assert_eq!(m.col_nnz(2), 2);
        assert_eq!(m.max_col_nnz(), 2);
    }

    #[test]
    fn get_returns_values_and_zeros() {
        let m = sample();
        assert_eq!(m.get(2, 0), 4.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.get(10, 10), 0.0);
    }

    #[test]
    fn from_raw_parts_rejects_bad_pointer_len() {
        let err = CscMatrix::from_raw_parts(2, 2, vec![0, 0], vec![], vec![]);
        assert!(matches!(err, Err(SparseError::MalformedPointers { .. })));
    }

    #[test]
    fn from_raw_parts_rejects_row_out_of_bounds() {
        let err = CscMatrix::from_raw_parts(1, 1, vec![0, 1], vec![3], vec![1.0]);
        assert!(matches!(err, Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn from_raw_parts_rejects_length_mismatch() {
        let err = CscMatrix::from_raw_parts(2, 1, vec![0, 2], vec![0, 1], vec![1.0]);
        assert!(matches!(err, Err(SparseError::LengthMismatch { .. })));
    }

    #[test]
    fn csr_round_trip_preserves_values() {
        let m = sample();
        let csr = m.to_csr();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m.get(r, c), csr.get(r, c));
            }
        }
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let m = sample();
        assert_eq!(m.iter().count(), m.nnz());
        let sum: f64 = m.iter().map(|(_, _, v)| v).sum();
        assert_eq!(sum, 15.0);
    }

    #[test]
    fn zeros_has_no_entries() {
        let m = CscMatrix::zeros(5, 7);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.rows(), 5);
        assert_eq!(m.cols(), 7);
        assert_eq!(m.sparsity(), 1.0);
    }
}
