//! Compressed Sparse Row (CSR) matrix.
//!
//! In the NeuraChip dataflow the *feature* matrix (matrix `B` of the SpGEMM)
//! is stored in CSR so that an entire row can be streamed for each matched
//! column index of the adjacency matrix (Section 3.1 of the paper).

use crate::{CooMatrix, CscMatrix, DenseMatrix, Result, SparseError};
use serde::{Deserialize, Serialize};

/// A sparse matrix in compressed sparse row format.
///
/// Structural invariants (enforced by [`CsrMatrix::from_raw_parts`]):
///
/// * `row_ptr.len() == rows + 1`, monotonically non-decreasing,
///   `row_ptr[0] == 0`, `row_ptr[rows] == col_idx.len()`;
/// * `col_idx.len() == values.len()`;
/// * every column index is `< cols`;
/// * column indices are sorted and unique within a row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from its raw arrays, validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::MalformedPointers`], [`SparseError::LengthMismatch`]
    /// or [`SparseError::IndexOutOfBounds`] when the arrays are inconsistent.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::MalformedPointers {
                detail: format!("row_ptr has {} entries, expected {}", row_ptr.len(), rows + 1),
            });
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                indices: col_idx.len(),
                values: values.len(),
            });
        }
        if row_ptr[0] != 0 {
            return Err(SparseError::MalformedPointers {
                detail: "row_ptr[0] must be 0".to_string(),
            });
        }
        if *row_ptr.last().expect("row_ptr is non-empty") != col_idx.len() {
            return Err(SparseError::MalformedPointers {
                detail: format!(
                    "row_ptr terminates at {} but there are {} stored values",
                    row_ptr.last().unwrap(),
                    col_idx.len()
                ),
            });
        }
        for w in row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::MalformedPointers {
                    detail: "row_ptr must be monotonically non-decreasing".to_string(),
                });
            }
        }
        for (r, w) in row_ptr.windows(2).enumerate() {
            let slice = &col_idx[w[0]..w[1]];
            for pair in slice.windows(2) {
                if pair[1] <= pair[0] {
                    return Err(SparseError::MalformedPointers {
                        detail: format!("row {r} has unsorted or duplicate column indices"),
                    });
                }
            }
            for &c in slice {
                if c >= cols {
                    return Err(SparseError::IndexOutOfBounds { row: r, col: c, rows, cols });
                }
            }
        }
        Ok(CsrMatrix { rows, cols, row_ptr, col_idx, values })
    }

    /// Creates an empty matrix (no stored entries) of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Fraction of the matrix that is zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        let total = (self.rows * self.cols) as f64;
        if total == 0.0 {
            0.0
        } else {
            1.0 - self.nnz() as f64 / total
        }
    }

    /// The row pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column index array (`nnz` entries).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The stored values (`nnz` entries).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Column indices and values of row `r` as parallel slices.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let start = self.row_ptr[r];
        let end = self.row_ptr[r + 1];
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// Number of stored entries in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Value at `(row, col)`, or `0.0` when the entry is not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if row >= self.rows || col >= self.cols {
            return 0.0;
        }
        let (cols_in_row, vals) = self.row(row);
        match cols_in_row.binary_search(&col) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals.iter()).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Converts to coordinate format.
    pub fn to_coo(&self) -> CooMatrix {
        CooMatrix::from_triplets(self.rows, self.cols, self.iter().collect())
            .expect("CSR entries are always in bounds")
    }

    /// Converts to compressed sparse column format.
    pub fn to_csc(&self) -> CscMatrix {
        self.to_coo().to_csc()
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut dense = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            *dense.get_mut(r, c) = v;
        }
        dense
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.cols, self.rows);
        for (r, c, v) in self.iter() {
            coo.push(c, r, v).expect("transposed entry is in bounds");
        }
        coo.to_csr()
    }

    /// Multiplies every stored value by `scale` in place.
    pub fn scale(&mut self, scale: f64) {
        for v in &mut self.values {
            *v *= scale;
        }
    }

    /// Row-normalises the matrix (each row sums to 1), the normalisation GCN
    /// applies to the adjacency matrix.  Rows whose sum is zero are left
    /// untouched.
    pub fn row_normalize(&mut self) {
        for r in 0..self.rows {
            let start = self.row_ptr[r];
            let end = self.row_ptr[r + 1];
            let sum: f64 = self.values[start..end].iter().sum();
            if sum != 0.0 {
                for v in &mut self.values[start..end] {
                    *v /= sum;
                }
            }
        }
    }

    /// Largest number of stored entries in any row (an imbalance indicator).
    pub fn max_row_nnz(&self) -> usize {
        (0..self.rows).map(|r| self.row_nnz(r)).max().unwrap_or(0)
    }
}

impl From<CooMatrix> for CsrMatrix {
    fn from(coo: CooMatrix) -> Self {
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 3]
        // [4 5 0]
        CsrMatrix::from_raw_parts(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn from_raw_parts_validates_row_ptr_len() {
        let err = CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(matches!(err, Err(SparseError::MalformedPointers { .. })));
    }

    #[test]
    fn from_raw_parts_validates_monotonicity() {
        let err = CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]);
        assert!(matches!(err, Err(SparseError::MalformedPointers { .. })));
    }

    #[test]
    fn from_raw_parts_validates_terminator() {
        let err = CsrMatrix::from_raw_parts(1, 2, vec![0, 5], vec![0], vec![1.0]);
        assert!(matches!(err, Err(SparseError::MalformedPointers { .. })));
    }

    #[test]
    fn from_raw_parts_validates_column_bounds() {
        let err = CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![7], vec![1.0]);
        assert!(matches!(err, Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn from_raw_parts_rejects_unsorted_columns() {
        let err = CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
        assert!(matches!(err, Err(SparseError::MalformedPointers { .. })));
    }

    #[test]
    fn get_returns_stored_and_zero_entries() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 1), 5.0);
        assert_eq!(m.get(9, 9), 0.0);
    }

    #[test]
    fn row_access_and_nnz() {
        let m = sample();
        assert_eq!(m.row(0), (&[0usize, 2][..], &[1.0, 2.0][..]));
        assert_eq!(m.row_nnz(1), 1);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.max_row_nnz(), 2);
    }

    #[test]
    fn identity_is_diagonal() {
        let id = CsrMatrix::identity(4);
        assert_eq!(id.nnz(), 4);
        for i in 0..4 {
            assert_eq!(id.get(i, i), 1.0);
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let m = sample();
        let t = m.transpose();
        for (r, c, v) in m.iter() {
            assert_eq!(t.get(c, r), v);
        }
        assert_eq!(t.rows(), m.cols());
        assert_eq!(t.cols(), m.rows());
    }

    #[test]
    fn row_normalize_makes_rows_sum_to_one() {
        let mut m = sample();
        m.row_normalize();
        for r in 0..m.rows() {
            let (_, vals) = m.row(r);
            let sum: f64 = vals.iter().sum();
            if !vals.is_empty() {
                assert!((sum - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sparsity_matches_definition() {
        let m = sample();
        assert!((m.sparsity() - (1.0 - 5.0 / 9.0)).abs() < 1e-12);
    }

    #[test]
    fn csc_conversion_round_trips() {
        let m = sample();
        let csc = m.to_csc();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m.get(r, c), csc.get(r, c));
            }
        }
    }

    #[test]
    fn scale_multiplies_all_values() {
        let mut m = sample();
        m.scale(2.0);
        assert_eq!(m.get(2, 1), 10.0);
    }
}
