//! Synthetic stand-ins for the paper's evaluation datasets.
//!
//! Table 1 of the paper lists twenty hyper-sparse SNAP / SuiteSparse matrices
//! used for the SpGEMM evaluation; the GNN evaluation (Figure 17) adds the
//! standard citation graphs (Cora, Citeseer, Pubmed).  Those files are not
//! redistributed here, so the catalog records each dataset's *published*
//! structural parameters (node count, edge count, sparsity) and pairs them
//! with a random-graph model that reproduces the same structure class.
//!
//! Because simulating multi-million-node graphs cycle-by-cycle is
//! impractical in CI, [`Dataset::generate_scaled`] produces a structurally
//! similar graph shrunk by a caller-chosen factor while preserving the
//! average degree (and therefore the bloat / imbalance behaviour that the
//! experiments measure).

use crate::gen::{GraphGenerator, GraphModel};
use crate::CooMatrix;
use serde::{Deserialize, Serialize};

/// Which structural family a dataset belongs to (chooses the generator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StructureClass {
    /// Social / citation networks with heavy-tailed degree distributions.
    ScaleFree,
    /// Web-style graphs with community structure (R-MAT).
    Community,
    /// Meshes and circuit matrices with near-uniform degrees.
    Mesh,
    /// Road networks: extremely sparse, bounded degree.
    Road,
    /// Finite-element matrices with banded structure.
    Banded,
}

/// Description of one evaluation dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Node count reported in Table 1 (or the GNN literature).
    pub nodes: usize,
    /// Edge (non-zero) count reported in Table 1.
    pub edges: usize,
    /// Sparsity percentage reported in Table 1.
    pub sparsity_percent: f64,
    /// Bloat percent reported in Table 1 (None for GNN-only datasets).
    pub paper_bloat_percent: Option<f64>,
    /// Structural family used to pick a generator.
    pub class: StructureClass,
    /// Feature dimension used for GCN experiments (0 when unused).
    pub feature_dim: usize,
}

impl Dataset {
    /// Average degree (edges / nodes) of the published dataset.
    pub fn average_degree(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.edges as f64 / self.nodes as f64
        }
    }

    /// Generates a synthetic analog at the published size.
    ///
    /// For the largest graphs this can be slow; prefer
    /// [`Dataset::generate_scaled`] for tests and quick experiments.
    pub fn generate_full(&self, seed: u64) -> CooMatrix {
        self.generate_with_nodes(self.nodes, self.edges, seed)
    }

    /// Generates a synthetic analog scaled down to roughly `nodes / scale`
    /// vertices while preserving the average degree.
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    pub fn generate_scaled(&self, scale: usize, seed: u64) -> CooMatrix {
        assert!(scale > 0, "scale must be at least 1");
        let nodes = (self.nodes / scale).max(32);
        let edges = ((self.edges as f64) * (nodes as f64 / self.nodes as f64)).ceil() as usize;
        self.generate_with_nodes(nodes, edges.max(nodes), seed)
    }

    fn generate_with_nodes(&self, nodes: usize, edges: usize, seed: u64) -> CooMatrix {
        let model = match self.class {
            StructureClass::ScaleFree => GraphModel::PowerLaw { edges, exponent: 2.1 },
            StructureClass::Community => {
                GraphModel::Rmat { edges, probabilities: (0.57, 0.19, 0.19) }
            }
            StructureClass::Mesh => {
                GraphModel::ErdosRenyi { p: edges as f64 / (nodes as f64 * nodes as f64) }
            }
            StructureClass::Road => GraphModel::ErdosRenyi {
                p: (edges as f64 / (nodes as f64 * nodes as f64)).min(1.0),
            },
            StructureClass::Banded => {
                GraphModel::Banded { bandwidth: ((edges / nodes.max(1)) / 2).max(1) }
            }
        };
        GraphGenerator::with_model(nodes, model, seed).generate()
    }
}

/// The catalog of all datasets referenced by the paper's evaluation.
#[derive(Debug, Clone, Default)]
pub struct DatasetCatalog;

impl DatasetCatalog {
    /// The twenty SpGEMM datasets of Table 1.
    pub fn spgemm_suite() -> Vec<Dataset> {
        use StructureClass::*;
        vec![
            ds("2cubes_sphere", 101_492, 1_647_264, 99.9840, Some(205.87), Banded),
            ds("ca-CondMat", 23_133, 186_936, 99.9651, Some(75.23), ScaleFree),
            ds("cit-Patents", 3_774_768, 16_518_948, 99.9999, Some(19.32), Community),
            ds("email-Enron", 36_692, 367_662, 99.9727, Some(68.90), ScaleFree),
            ds("filter3D", 106_437, 2_707_179, 99.9761, Some(326.34), Banded),
            ds("mario002", 389_874, 2_101_242, 99.9986, Some(99.43), Mesh),
            ds("p2p-Gnutella31", 62_586, 147_892, 99.9962, Some(10.21), ScaleFree),
            ds("poisson3Da", 13_514, 352_762, 99.8068, Some(297.92), Banded),
            ds("scircuit", 170_998, 958_936, 99.9967, Some(66.13), Mesh),
            ds("web-Google", 916_428, 5_105_039, 99.9994, Some(104.27), Community),
            ds("amazon0312", 400_727, 3_200_440, 99.9980, Some(97.21), Community),
            ds("cage12", 130_228, 2_032_536, 99.9880, Some(127.23), Banded),
            ds("cop20k_A", 121_192, 2_624_331, 99.9821, Some(327.07), Banded),
            ds("facebook", 4_039, 60_050, 99.1519, Some(2872.80), ScaleFree),
            ds("m133-b3", 200_200, 800_800, 99.9980, Some(26.93), Mesh),
            ds("offshore", 259_789, 4_242_673, 99.9937, Some(205.45), Banded),
            ds("patents_main", 240_547, 560_943, 99.9990, Some(14.18), Community),
            ds("roadNet-CA", 1_971_281, 5_533_214, 99.9999, Some(35.75), Road),
            ds("webbase-1M", 1_000_005, 3_105_536, 99.9997, Some(36.02), Community),
            ds("wiki-Vote", 8_297, 103_689, 99.8494, Some(148.09), ScaleFree),
        ]
    }

    /// The GCN datasets used for the GNN-accelerator comparison (Figure 17)
    /// and the design-space study (Figure 11, Cora).
    pub fn gnn_suite() -> Vec<Dataset> {
        use StructureClass::*;
        vec![
            gnn("cora", 2_708, 10_556, 1_433),
            gnn("citeseer", 3_327, 9_104, 3_703),
            gnn("pubmed", 19_717, 88_648, 500),
            Dataset {
                name: "reddit-small",
                nodes: 65_000,
                edges: 1_200_000,
                sparsity_percent: 99.97,
                paper_bloat_percent: None,
                class: ScaleFree,
                feature_dim: 602,
            },
            Dataset {
                name: "amazon-computers",
                nodes: 13_752,
                edges: 491_722,
                sparsity_percent: 99.74,
                paper_bloat_percent: None,
                class: ScaleFree,
                feature_dim: 767,
            },
        ]
    }

    /// The subset of matrices used for the Figure 13 mapping heat maps.
    pub fn heatmap_suite() -> Vec<Dataset> {
        let mut suite: Vec<Dataset> = Self::spgemm_suite()
            .into_iter()
            .filter(|d| matches!(d.name, "2cubes_sphere" | "mario002" | "facebook" | "filter3D"))
            .collect();
        suite.insert(0, Self::by_name("cora").expect("cora is in the GNN suite"));
        suite
    }

    /// Looks a dataset up by its paper name in either suite.
    pub fn by_name(name: &str) -> Option<Dataset> {
        Self::spgemm_suite()
            .into_iter()
            .chain(Self::gnn_suite())
            .find(|d| d.name.eq_ignore_ascii_case(name))
    }
}

fn ds(
    name: &'static str,
    nodes: usize,
    edges: usize,
    sparsity_percent: f64,
    paper_bloat_percent: Option<f64>,
    class: StructureClass,
) -> Dataset {
    Dataset { name, nodes, edges, sparsity_percent, paper_bloat_percent, class, feature_dim: 0 }
}

fn gnn(name: &'static str, nodes: usize, edges: usize, feature_dim: usize) -> Dataset {
    let sparsity_percent = 100.0 * (1.0 - edges as f64 / (nodes as f64 * nodes as f64));
    Dataset {
        name,
        nodes,
        edges,
        sparsity_percent,
        paper_bloat_percent: None,
        class: StructureClass::ScaleFree,
        feature_dim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bloat;

    #[test]
    fn spgemm_suite_has_twenty_datasets() {
        let suite = DatasetCatalog::spgemm_suite();
        assert_eq!(suite.len(), 20);
        let names: std::collections::HashSet<&str> = suite.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), 20, "dataset names must be unique");
    }

    #[test]
    fn table1_parameters_are_recorded() {
        let fb = DatasetCatalog::by_name("facebook").unwrap();
        assert_eq!(fb.nodes, 4_039);
        assert_eq!(fb.edges, 60_050);
        assert_eq!(fb.paper_bloat_percent, Some(2872.80));
        assert!(fb.sparsity_percent > 99.0);
    }

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert!(DatasetCatalog::by_name("Cora").is_some());
        assert!(DatasetCatalog::by_name("WEB-GOOGLE").is_some());
        assert!(DatasetCatalog::by_name("not-a-dataset").is_none());
    }

    #[test]
    fn scaled_generation_preserves_average_degree() {
        let d = DatasetCatalog::by_name("web-Google").unwrap();
        let g = d.generate_scaled(2048, 7);
        let got_degree = g.nnz() as f64 / g.rows() as f64;
        // Power-law/R-MAT duplicate merging can lose some edges; accept 2x band.
        assert!(
            got_degree > d.average_degree() * 0.3 && got_degree < d.average_degree() * 3.0,
            "avg degree {got_degree} too far from published {}",
            d.average_degree()
        );
    }

    #[test]
    fn heatmap_suite_matches_figure13() {
        let names: Vec<&str> = DatasetCatalog::heatmap_suite().iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["cora", "2cubes_sphere", "filter3D", "mario002", "facebook"]);
    }

    #[test]
    fn gnn_suite_has_feature_dimensions() {
        for d in DatasetCatalog::gnn_suite() {
            assert!(d.feature_dim > 0, "{} needs a feature dimension", d.name);
        }
    }

    #[test]
    fn facebook_analog_has_highest_bloat_of_small_suite() {
        // The paper's key Table-1 observation: facebook (densest, most skewed)
        // exhibits by far the highest bloat.  Verify the synthetic analogs
        // preserve this ordering for a few small datasets.
        let scale = 16;
        let fb = DatasetCatalog::by_name("facebook").unwrap();
        let wiki = DatasetCatalog::by_name("wiki-Vote").unwrap();
        let p2p = DatasetCatalog::by_name("p2p-Gnutella31").unwrap();
        let bloat_of = |d: &Dataset| {
            let m = d.generate_scaled(scale, 3).to_csr();
            bloat::analyze_square(&m).bloat_percent
        };
        let fb_b = bloat_of(&fb);
        let wiki_b = bloat_of(&wiki);
        let p2p_b = bloat_of(&p2p);
        assert!(fb_b > wiki_b, "facebook bloat {fb_b} should exceed wiki-Vote {wiki_b}");
        assert!(wiki_b > p2p_b, "wiki-Vote bloat {wiki_b} should exceed p2p {p2p_b}");
    }

    #[test]
    fn generate_full_uses_published_node_count_for_small_graphs() {
        let cora = DatasetCatalog::by_name("cora").unwrap();
        let g = cora.generate_full(1);
        assert_eq!(g.rows(), 2_708);
    }
}
