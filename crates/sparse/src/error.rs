//! Error type shared by all fallible constructors in `neura-sparse`.

use std::fmt;

/// Errors produced when constructing or converting sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column index lies outside the declared matrix shape.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows in the matrix.
        rows: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// The row-pointer (or column-pointer) array is malformed: wrong length,
    /// not monotonically non-decreasing, or its last element does not equal
    /// the number of stored values.
    MalformedPointers {
        /// Human-readable description of the structural violation.
        detail: String,
    },
    /// The index array and value array have different lengths.
    LengthMismatch {
        /// Length of the index array.
        indices: usize,
        /// Length of the value array.
        values: usize,
    },
    /// Two matrices have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand as (rows, cols).
        left: (usize, usize),
        /// Shape of the right operand as (rows, cols).
        right: (usize, usize),
    },
    /// A generator was asked for more edges than the graph can hold.
    TooManyEdges {
        /// Number of edges requested.
        requested: usize,
        /// Maximum number of edges the shape supports.
        capacity: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, rows, cols } => {
                write!(f, "entry ({row}, {col}) is outside the {rows}x{cols} matrix shape")
            }
            SparseError::MalformedPointers { detail } => {
                write!(f, "malformed pointer array: {detail}")
            }
            SparseError::LengthMismatch { indices, values } => {
                write!(f, "index array has {indices} elements but value array has {values}")
            }
            SparseError::ShapeMismatch { left, right } => {
                write!(f, "incompatible shapes {}x{} and {}x{}", left.0, left.1, right.0, right.1)
            }
            SparseError::TooManyEdges { requested, capacity } => {
                write!(f, "requested {requested} edges but the shape only supports {capacity}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = SparseError::IndexOutOfBounds { row: 5, col: 9, rows: 4, cols: 4 };
        let text = err.to_string();
        assert!(text.contains("(5, 9)"));
        assert!(text.contains("4x4"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }

    #[test]
    fn shape_mismatch_mentions_both_shapes() {
        let err = SparseError::ShapeMismatch { left: (2, 3), right: (4, 5) };
        let text = err.to_string();
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
    }
}
