//! Inner-product (output stationary) SpGEMM.

use crate::{CooMatrix, CsrMatrix};

/// Computes `C = A × B` with the inner-product dataflow.
///
/// Each output element `c_ij` is computed directly as the dot product of row
/// `i` of `A` and column `j` of `B` (accessed through `B`'s CSC form).  This
/// is the dataflow of InnerSP; it has poor input reuse but needs no on-chip
/// accumulation, which is why the paper contrasts it with Gustavson's
/// approach.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn inner_product(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let b_csc = b.to_csc();
    let mut coo = CooMatrix::new(a.rows(), b.cols());
    for i in 0..a.rows() {
        let (a_cols, a_vals) = a.row(i);
        if a_cols.is_empty() {
            continue;
        }
        for j in 0..b.cols() {
            let (b_rows, b_vals) = b_csc.col(j);
            if b_rows.is_empty() {
                continue;
            }
            // Sorted-merge dot product of the two index lists.
            let mut acc = 0.0;
            let mut hit = false;
            let (mut p, mut q) = (0usize, 0usize);
            while p < a_cols.len() && q < b_rows.len() {
                match a_cols[p].cmp(&b_rows[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        acc += a_vals[p] * b_vals[q];
                        hit = true;
                        p += 1;
                        q += 1;
                    }
                }
            }
            if hit {
                coo.push(i, j, acc).expect("output coordinate is in bounds");
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphGenerator;
    use crate::spgemm::gustavson;

    #[test]
    fn agrees_with_gustavson() {
        let a = GraphGenerator::power_law(64, 400, 2.1, 11).generate().to_csr();
        let b = GraphGenerator::power_law(64, 380, 2.3, 12).generate().to_csr();
        let inner = inner_product(&a, &b);
        let row_wise = gustavson(&a, &b);
        assert_eq!(inner.nnz(), row_wise.nnz());
        assert!(inner.to_dense().max_abs_diff(&row_wise.to_dense()).unwrap() < 1e-9);
    }

    #[test]
    fn keeps_structural_zeros_from_cancellation() {
        // a_i . b_j = 1*1 + 1*(-1) = 0: the entry is still structurally produced.
        let a = CooMatrix::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, 1.0)]).unwrap().to_csr();
        let b = CooMatrix::from_triplets(2, 1, vec![(0, 0, 1.0), (1, 0, -1.0)]).unwrap().to_csr();
        let c = inner_product(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), 0.0);
    }

    #[test]
    fn empty_inputs_give_empty_output() {
        let a = CsrMatrix::zeros(3, 3);
        let b = CsrMatrix::zeros(3, 3);
        assert_eq!(inner_product(&a, &b).nnz(), 0);
    }
}
