//! Reference SpGEMM (sparse × sparse) implementations.
//!
//! The paper's Figure 2 contrasts four ways of organising the multiplication
//! stage of SpGEMM.  Each is implemented here as a functionally equivalent
//! reference kernel:
//!
//! * [`inner_product`] — computes each output element directly (InnerSP),
//! * [`outer_product`] — forms one full partial-product matrix per column of
//!   `A` / row of `B` (OuterSPACE, SpArch),
//! * [`gustavson`] — the row-wise product used by Gamma, MatRaptor, SPADA and
//!   as the basis of NeuraChip,
//! * [`tiled_gustavson`] — NeuraChip's adaptation that processes `tile`
//!   column elements of `A` at once (the `MMH4` instruction corresponds to
//!   `tile == 4`).
//!
//! All kernels produce identical numerical results; they differ only in the
//! order in which partial products are generated, which is what the
//! accelerator models in `neura-chip` care about.  [`multiply_counting`]
//! additionally reports the partial-product trace statistics used by the
//! memory-bloat analysis and the baseline accelerator models.

mod gustavson;
mod inner;
mod outer;
mod tiled;

pub use gustavson::{gustavson, gustavson_with_stats};
pub use inner::inner_product;
pub use outer::{outer_product, outer_product_partial_products};
pub use tiled::{tiled_gustavson, TiledTask, TiledTrace};

use crate::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Which multiplication-stage dataflow to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Inner-product (output stationary) dataflow.
    InnerProduct,
    /// Outer-product dataflow with explicit intermediate matrices.
    OuterProduct,
    /// Row-wise (Gustavson) dataflow.
    RowWise,
    /// Tiled row-wise dataflow with the given tile height.
    TiledRowWise(usize),
}

impl Dataflow {
    /// Human readable name used in reports.
    pub fn name(&self) -> String {
        match self {
            Dataflow::InnerProduct => "inner-product".to_string(),
            Dataflow::OuterProduct => "outer-product".to_string(),
            Dataflow::RowWise => "row-wise".to_string(),
            Dataflow::TiledRowWise(t) => format!("tiled-row-wise-{t}"),
        }
    }
}

/// Statistics gathered while running a counting SpGEMM.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpgemmStats {
    /// Number of scalar multiplications performed (== intermediate partial products).
    pub multiplications: u64,
    /// Number of scalar additions performed during accumulation.
    pub additions: u64,
    /// Number of structurally non-zero entries in the output.
    pub output_nnz: usize,
    /// Maximum number of partial products that target a single output row.
    pub max_row_partial_products: u64,
    /// Number of rows of the output that receive at least one partial product.
    pub active_rows: usize,
}

impl SpgemmStats {
    /// Total floating point operations (multiplications + additions).
    pub fn flops(&self) -> u64 {
        self.multiplications + self.additions
    }

    /// The paper's "bloat percent" (Equation 1):
    /// `(pp_interim - nnz_output) / nnz_output * 100`.
    pub fn bloat_percent(&self) -> f64 {
        if self.output_nnz == 0 {
            0.0
        } else {
            (self.multiplications as f64 - self.output_nnz as f64) / self.output_nnz as f64 * 100.0
        }
    }
}

/// Runs the requested dataflow and returns the product matrix.
///
/// All dataflows produce the same result; this entry point exists so callers
/// (benchmarks, tests) can select a dataflow by value.
pub fn multiply(a: &CsrMatrix, b: &CsrMatrix, dataflow: Dataflow) -> crate::Result<CsrMatrix> {
    if a.cols() != b.rows() {
        return Err(crate::SparseError::ShapeMismatch {
            left: (a.rows(), a.cols()),
            right: (b.rows(), b.cols()),
        });
    }
    Ok(match dataflow {
        Dataflow::InnerProduct => inner_product(a, b),
        Dataflow::OuterProduct => outer_product(a, b),
        Dataflow::RowWise => gustavson(a, b),
        Dataflow::TiledRowWise(tile) => tiled_gustavson(a, b, tile).product,
    })
}

/// Runs a row-wise SpGEMM while counting multiplications/additions.
///
/// This is the canonical source of the partial-product counts used by the
/// memory-bloat analysis (Table 1) and every analytical baseline model.
pub fn multiply_counting(a: &CsrMatrix, b: &CsrMatrix) -> (CsrMatrix, SpgemmStats) {
    gustavson_with_stats(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphGenerator;

    fn small_pair() -> (CsrMatrix, CsrMatrix) {
        let a = GraphGenerator::erdos_renyi(40, 0.12, 3).generate().to_csr();
        let b = GraphGenerator::erdos_renyi(40, 0.15, 4).generate().to_csr();
        (a, b)
    }

    #[test]
    fn all_dataflows_agree_with_dense_reference() {
        let (a, b) = small_pair();
        let expected = a.to_dense().matmul(&b.to_dense()).unwrap();
        for dataflow in [
            Dataflow::InnerProduct,
            Dataflow::OuterProduct,
            Dataflow::RowWise,
            Dataflow::TiledRowWise(4),
            Dataflow::TiledRowWise(1),
            Dataflow::TiledRowWise(8),
        ] {
            let c = multiply(&a, &b, dataflow).unwrap();
            let diff = c.to_dense().max_abs_diff(&expected).unwrap();
            assert!(diff < 1e-9, "dataflow {dataflow:?} diverged by {diff}");
        }
    }

    #[test]
    fn multiply_rejects_shape_mismatch() {
        let a = CsrMatrix::identity(3);
        let b = CsrMatrix::identity(4);
        assert!(multiply(&a, &b, Dataflow::RowWise).is_err());
    }

    #[test]
    fn counting_stats_are_consistent() {
        let (a, b) = small_pair();
        let (c, stats) = multiply_counting(&a, &b);
        assert_eq!(stats.output_nnz, c.nnz());
        // Each output non-zero requires at least one multiplication.
        assert!(stats.multiplications >= c.nnz() as u64);
        // additions == multiplications - populated entries (merging k partial
        // products takes k-1 additions).
        assert_eq!(stats.additions, stats.multiplications - c.nnz() as u64);
        assert!(stats.bloat_percent() >= 0.0);
    }

    #[test]
    fn dataflow_names_are_distinct() {
        let names: std::collections::HashSet<String> = [
            Dataflow::InnerProduct,
            Dataflow::OuterProduct,
            Dataflow::RowWise,
            Dataflow::TiledRowWise(4),
        ]
        .iter()
        .map(|d| d.name())
        .collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn identity_times_identity_is_identity() {
        let id = CsrMatrix::identity(16);
        for dataflow in [Dataflow::InnerProduct, Dataflow::OuterProduct, Dataflow::RowWise] {
            let c = multiply(&id, &id, dataflow).unwrap();
            assert_eq!(c.nnz(), 16);
            for i in 0..16 {
                assert_eq!(c.get(i, i), 1.0);
            }
        }
    }
}
