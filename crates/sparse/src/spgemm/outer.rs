//! Outer-product SpGEMM.

use crate::{CooMatrix, CsrMatrix};

/// Computes `C = A × B` with the outer-product dataflow.
///
/// For every `k`, the outer product of column `k` of `A` (accessed through
/// CSC) and row `k` of `B` forms a complete partial-product matrix; the sum
/// of all of them is `C`.  This is the dataflow of OuterSPACE and SpArch and
/// is the one that suffers the worst memory bloat, which the paper uses to
/// motivate the rolling-eviction design.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn outer_product(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let a_csc = a.to_csc();
    let mut coo = CooMatrix::new(a.rows(), b.cols());
    for k in 0..a.cols() {
        let (a_rows, a_vals) = a_csc.col(k);
        let (b_cols, b_vals) = b.row(k);
        for (&i, &a_ik) in a_rows.iter().zip(a_vals.iter()) {
            for (&j, &b_kj) in b_cols.iter().zip(b_vals.iter()) {
                coo.push(i, j, a_ik * b_kj).expect("output coordinate is in bounds");
            }
        }
    }
    // Duplicate coordinates (one per contributing k) merge during conversion:
    // this models the off-chip merge phase of outer-product accelerators.
    coo.to_csr()
}

/// Number of intermediate partial products the outer-product dataflow
/// generates for `A × B` (identical to the row-wise count, but exposed
/// separately because outer-product designs must *store* them all).
pub fn outer_product_partial_products(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let a_csc = a.to_csc();
    (0..a.cols()).map(|k| a_csc.col_nnz(k) as u64 * b.row_nnz(k) as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphGenerator;
    use crate::spgemm::gustavson_with_stats;

    #[test]
    fn agrees_with_gustavson() {
        let a = GraphGenerator::erdos_renyi(50, 0.1, 21).generate().to_csr();
        let b = GraphGenerator::erdos_renyi(50, 0.08, 22).generate().to_csr();
        let outer = outer_product(&a, &b);
        let (row_wise, stats) = gustavson_with_stats(&a, &b);
        assert!(outer.to_dense().max_abs_diff(&row_wise.to_dense()).unwrap() < 1e-9);
        // The two dataflows generate the same number of scalar products.
        assert_eq!(outer_product_partial_products(&a, &b), stats.multiplications);
    }

    #[test]
    fn partial_product_count_formula() {
        // A = identity(3): each column has 1 nnz; B row nnz decides the count.
        let a = CsrMatrix::identity(3);
        let b = GraphGenerator::erdos_renyi(3, 0.9, 5).generate().to_csr();
        assert_eq!(outer_product_partial_products(&a, &b), b.nnz() as u64);
    }

    #[test]
    fn empty_matrices_produce_no_partial_products() {
        let a = CsrMatrix::zeros(4, 4);
        let b = CsrMatrix::zeros(4, 4);
        assert_eq!(outer_product_partial_products(&a, &b), 0);
        assert_eq!(outer_product(&a, &b).nnz(), 0);
    }
}
