//! Row-wise (Gustavson) SpGEMM.

use super::SpgemmStats;
use crate::{CooMatrix, CsrMatrix};

/// Computes `C = A × B` with the row-wise (Gustavson) dataflow.
///
/// For each row `i` of `A`, every stored element `a_ik` scales row `k` of
/// `B`; the scaled rows are accumulated into row `i` of `C` using a sparse
/// accumulator.  This is the dataflow adopted by Gamma, MatRaptor, SPADA and
/// NeuraChip because it reuses rows of `B` and never materialises a full
/// intermediate matrix.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` (use [`super::multiply`] for a fallible
/// entry point).
pub fn gustavson(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    gustavson_with_stats(a, b).0
}

/// Same as [`gustavson`] but also returns operation counts.
pub fn gustavson_with_stats(a: &CsrMatrix, b: &CsrMatrix) -> (CsrMatrix, SpgemmStats) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut stats = SpgemmStats::default();
    let mut coo = CooMatrix::new(a.rows(), b.cols());

    // Dense sparse-accumulator (SPA) over the columns of B, reset per row.
    let mut accumulator = vec![0.0f64; b.cols()];
    let mut occupied: Vec<usize> = Vec::new();
    let mut touched = vec![false; b.cols()];

    for i in 0..a.rows() {
        let (a_cols, a_vals) = a.row(i);
        let mut row_partial_products = 0u64;
        for (&k, &a_ik) in a_cols.iter().zip(a_vals.iter()) {
            let (b_cols, b_vals) = b.row(k);
            for (&j, &b_kj) in b_cols.iter().zip(b_vals.iter()) {
                stats.multiplications += 1;
                row_partial_products += 1;
                if touched[j] {
                    stats.additions += 1;
                    accumulator[j] += a_ik * b_kj;
                } else {
                    touched[j] = true;
                    occupied.push(j);
                    accumulator[j] = a_ik * b_kj;
                }
            }
        }
        if row_partial_products > 0 {
            stats.active_rows += 1;
        }
        stats.max_row_partial_products = stats.max_row_partial_products.max(row_partial_products);
        occupied.sort_unstable();
        for &j in &occupied {
            coo.push(i, j, accumulator[j]).expect("column index is in bounds");
            accumulator[j] = 0.0;
            touched[j] = false;
        }
        occupied.clear();
    }

    let product = coo.to_csr();
    stats.output_nnz = product.nnz();
    (product, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphGenerator;

    #[test]
    fn matches_dense_reference() {
        let a = GraphGenerator::rmat(6, 300, 5).generate().to_csr();
        let b = GraphGenerator::rmat(6, 280, 9).generate().to_csr();
        let c = gustavson(&a, &b);
        let expected = a.to_dense().matmul(&b.to_dense()).unwrap();
        assert!(c.to_dense().max_abs_diff(&expected).unwrap() < 1e-9);
    }

    #[test]
    fn empty_rows_produce_empty_output_rows() {
        let a = CsrMatrix::zeros(5, 5);
        let b = CsrMatrix::identity(5);
        let c = gustavson(&a, &b);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn stats_count_partial_products() {
        // A = [1 1; 0 1], B = [1 1; 1 1]
        let a = crate::CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 1, 1.0), (1, 1, 1.0)])
            .unwrap()
            .to_csr();
        let b = crate::CooMatrix::from_triplets(
            2,
            2,
            vec![(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)],
        )
        .unwrap()
        .to_csr();
        let (c, stats) = gustavson_with_stats(&a, &b);
        // Row 0 of A has 2 nnz, each scaling a 2-nnz row of B: 4 products.
        // Row 1 of A has 1 nnz scaling a 2-nnz row: 2 products.
        assert_eq!(stats.multiplications, 6);
        assert_eq!(c.nnz(), 4);
        assert_eq!(stats.additions, 2);
        assert_eq!(stats.max_row_partial_products, 4);
        assert_eq!(stats.active_rows, 2);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn panics_on_shape_mismatch() {
        let a = CsrMatrix::identity(2);
        let b = CsrMatrix::identity(3);
        let _ = gustavson(&a, &b);
    }
}
