//! Tiled Gustavson SpGEMM — the dataflow NeuraChip's `MMH` instructions implement.

use crate::{CooMatrix, CsrMatrix};
use serde::{Deserialize, Serialize};

/// One multiplication task of the tiled Gustavson dataflow.
///
/// A task pairs up to `tile` consecutive stored elements of one column `k`
/// of `A` (rows `a_rows`) with the whole of row `k` of `B`.  NeuraChip lowers
/// one task to a single `MMH<tile>` instruction; each `(a element, b element)`
/// pair becomes one partial product / one `HACC` instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TiledTask {
    /// The shared inner index `k` (column of `A`, row of `B`).
    pub k: usize,
    /// Output-row indices covered by this task (up to `tile` of them).
    pub a_rows: Vec<usize>,
    /// Values of `A` corresponding to `a_rows`.
    pub a_values: Vec<f64>,
    /// Number of stored elements in row `k` of `B`.
    pub b_row_nnz: usize,
}

impl TiledTask {
    /// Number of partial products (HACC instructions) this task generates.
    pub fn partial_products(&self) -> u64 {
        self.a_rows.len() as u64 * self.b_row_nnz as u64
    }
}

/// Result of a tiled Gustavson multiplication: the product plus the task trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TiledTrace {
    /// The numerical product `C = A × B`.
    pub product: CsrMatrix,
    /// The multiplication tasks in dispatch order.
    pub tasks: Vec<TiledTask>,
    /// Tile height used (4 corresponds to the paper's `MMH4`).
    pub tile: usize,
    /// Total number of partial products generated.
    pub partial_products: u64,
}

impl TiledTrace {
    /// Number of `MMH` instructions the compiler would emit for this trace.
    pub fn instruction_count(&self) -> usize {
        self.tasks.len()
    }

    /// Average number of partial products per task.
    pub fn avg_partial_products_per_task(&self) -> f64 {
        if self.tasks.is_empty() {
            0.0
        } else {
            self.partial_products as f64 / self.tasks.len() as f64
        }
    }
}

/// Computes `C = A × B` with NeuraChip's tiled Gustavson dataflow and records
/// the task decomposition.
///
/// The computation walks the columns of `A` (CSC order, as streamed by the
/// NeuraCore address generators), chopping each column into groups of `tile`
/// stored elements.  Every group combined with row `k` of `B` forms one
/// [`TiledTask`].  Numerically the result is identical to plain Gustavson.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` or if `tile == 0`.
pub fn tiled_gustavson(a: &CsrMatrix, b: &CsrMatrix, tile: usize) -> TiledTrace {
    assert!(tile > 0, "tile height must be at least 1");
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let a_csc = a.to_csc();
    let mut coo = CooMatrix::new(a.rows(), b.cols());
    let mut tasks = Vec::new();
    let mut partial_products = 0u64;

    for k in 0..a.cols() {
        let (a_rows, a_vals) = a_csc.col(k);
        let (b_cols, b_vals) = b.row(k);
        if a_rows.is_empty() {
            continue;
        }
        for chunk_start in (0..a_rows.len()).step_by(tile) {
            let chunk_end = (chunk_start + tile).min(a_rows.len());
            let rows_chunk = &a_rows[chunk_start..chunk_end];
            let vals_chunk = &a_vals[chunk_start..chunk_end];
            let task = TiledTask {
                k,
                a_rows: rows_chunk.to_vec(),
                a_values: vals_chunk.to_vec(),
                b_row_nnz: b_cols.len(),
            };
            partial_products += task.partial_products();
            // Generate the partial products for this task.
            for (&i, &a_ik) in rows_chunk.iter().zip(vals_chunk.iter()) {
                for (&j, &b_kj) in b_cols.iter().zip(b_vals.iter()) {
                    coo.push(i, j, a_ik * b_kj).expect("output coordinate is in bounds");
                }
            }
            tasks.push(task);
        }
    }

    TiledTrace { product: coo.to_csr(), tasks, tile, partial_products }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphGenerator;
    use crate::spgemm::gustavson_with_stats;

    #[test]
    fn matches_plain_gustavson_numerically() {
        let a = GraphGenerator::rmat(6, 250, 17).generate().to_csr();
        let b = GraphGenerator::rmat(6, 260, 18).generate().to_csr();
        let (reference, stats) = gustavson_with_stats(&a, &b);
        for tile in [1, 2, 4, 8] {
            let trace = tiled_gustavson(&a, &b, tile);
            assert!(
                trace.product.to_dense().max_abs_diff(&reference.to_dense()).unwrap() < 1e-9,
                "tile {tile} diverged"
            );
            assert_eq!(trace.partial_products, stats.multiplications);
        }
    }

    #[test]
    fn larger_tiles_emit_fewer_instructions() {
        let a = GraphGenerator::power_law(128, 900, 2.0, 3).generate().to_csr();
        let b = a.clone();
        let t1 = tiled_gustavson(&a, &b, 1);
        let t4 = tiled_gustavson(&a, &b, 4);
        let t8 = tiled_gustavson(&a, &b, 8);
        assert!(t4.instruction_count() <= t1.instruction_count());
        assert!(t8.instruction_count() <= t4.instruction_count());
        // Partial-product totals are dataflow-invariant.
        assert_eq!(t1.partial_products, t4.partial_products);
        assert_eq!(t4.partial_products, t8.partial_products);
    }

    #[test]
    fn task_rows_never_exceed_tile() {
        let a = GraphGenerator::power_law(64, 600, 1.9, 7).generate().to_csr();
        let trace = tiled_gustavson(&a, &a, 4);
        assert!(trace.tasks.iter().all(|t| t.a_rows.len() <= 4 && !t.a_rows.is_empty()));
        assert!(trace.tasks.iter().all(|t| t.a_rows.len() == t.a_values.len()));
    }

    #[test]
    fn avg_partial_products_is_total_over_tasks() {
        let a = GraphGenerator::erdos_renyi(30, 0.2, 2).generate().to_csr();
        let trace = tiled_gustavson(&a, &a, 4);
        let expected = trace.partial_products as f64 / trace.tasks.len() as f64;
        assert!((trace.avg_partial_products_per_task() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tile height")]
    fn zero_tile_panics() {
        let a = CsrMatrix::identity(2);
        let _ = tiled_gustavson(&a, &a, 0);
    }
}
