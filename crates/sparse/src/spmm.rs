//! Sparse × dense multiplication (SpMM) and GCN layer reference math.
//!
//! The GCN combination stage multiplies the (sparse) aggregated features by
//! the dense weight matrix; the aggregation stage itself is `A × X` where `X`
//! is dense.  These reference kernels provide the ground truth against which
//! the accelerator model's functional output is verified.

use crate::{CsrMatrix, DenseMatrix, Result, SparseError};

/// Computes the dense product `C = A × X` where `A` is sparse and `X` dense.
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] when `a.cols() != x.rows()`.
pub fn spmm(a: &CsrMatrix, x: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != x.rows() {
        return Err(SparseError::ShapeMismatch {
            left: (a.rows(), a.cols()),
            right: (x.rows(), x.cols()),
        });
    }
    let mut out = DenseMatrix::zeros(a.rows(), x.cols());
    for i in 0..a.rows() {
        let (cols, vals) = a.row(i);
        for (&k, &a_ik) in cols.iter().zip(vals.iter()) {
            let x_row = x.row(k);
            for (j, &x_kj) in x_row.iter().enumerate() {
                *out.get_mut(i, j) += a_ik * x_kj;
            }
        }
    }
    Ok(out)
}

/// Number of scalar multiply operations `spmm` performs: `nnz(A) × cols(X)`.
pub fn spmm_flops(a: &CsrMatrix, feature_dim: usize) -> u64 {
    // One multiply and one add per (nnz, column) pair: 2 flops each.
    2 * a.nnz() as u64 * feature_dim as u64
}

/// Reference forward pass of a single GCN layer: `relu(A · X · W)` (Eq. 2).
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] when the dimensions are inconsistent.
pub fn gcn_layer(a: &CsrMatrix, x: &DenseMatrix, w: &DenseMatrix) -> Result<DenseMatrix> {
    let aggregated = spmm(a, x)?;
    let mut combined = aggregated.matmul(w)?;
    combined.relu();
    Ok(combined)
}

/// Flop count of a full GCN layer (aggregation + combination), used by the
/// analytical GNN baseline models.
pub fn gcn_layer_flops(a: &CsrMatrix, in_features: usize, out_features: usize) -> u64 {
    let aggregation = spmm_flops(a, in_features);
    let combination = 2 * a.rows() as u64 * in_features as u64 * out_features as u64;
    aggregation + combination
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphGenerator;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        DenseMatrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn spmm_matches_dense_reference() {
        let a = GraphGenerator::erdos_renyi(30, 0.15, 42).generate().to_csr();
        let x = random_dense(30, 8, 1);
        let got = spmm(&a, &x).unwrap();
        let expected = a.to_dense().matmul(&x).unwrap();
        assert!(got.max_abs_diff(&expected).unwrap() < 1e-9);
    }

    #[test]
    fn spmm_rejects_shape_mismatch() {
        let a = CsrMatrix::identity(4);
        let x = DenseMatrix::zeros(5, 3);
        assert!(matches!(spmm(&a, &x), Err(SparseError::ShapeMismatch { .. })));
    }

    #[test]
    fn gcn_layer_applies_relu() {
        let a = CsrMatrix::identity(3);
        let x = DenseMatrix::from_rows(&[&[1.0, -1.0], &[2.0, -2.0], &[0.5, -0.5]]).unwrap();
        let w = DenseMatrix::identity(2);
        let out = gcn_layer(&a, &x, &w).unwrap();
        // Negative entries clamp to zero.
        assert_eq!(out.get(0, 1), 0.0);
        assert_eq!(out.get(1, 0), 2.0);
    }

    #[test]
    fn flop_counts_are_positive_and_scale() {
        let a = GraphGenerator::erdos_renyi(50, 0.1, 7).generate().to_csr();
        let f16 = gcn_layer_flops(&a, 16, 16);
        let f32 = gcn_layer_flops(&a, 32, 16);
        assert!(f16 > 0);
        assert!(f32 > f16);
        assert_eq!(spmm_flops(&a, 16), 2 * a.nnz() as u64 * 16);
    }
}
