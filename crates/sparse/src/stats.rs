//! Structural statistics of sparse matrices.
//!
//! The load-balance analysis in the paper (Figures 12/13) hinges on how
//! unevenly non-zeros — and therefore partial products — are distributed
//! across rows and columns.  These helpers quantify that structure.

use crate::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Summary statistics of the per-row non-zero distribution of a matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum row nnz.
    pub min: usize,
    /// Maximum row nnz.
    pub max: usize,
    /// Mean row nnz.
    pub mean: f64,
    /// Standard deviation of row nnz.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / mean`), the primary imbalance metric.
    pub coefficient_of_variation: f64,
    /// Number of rows with zero stored entries.
    pub empty_rows: usize,
}

/// Computes per-row degree statistics.
pub fn degree_stats(m: &CsrMatrix) -> DegreeStats {
    let degrees: Vec<usize> = (0..m.rows()).map(|r| m.row_nnz(r)).collect();
    summarize(&degrees)
}

/// Computes per-column degree statistics (via the transpose).
pub fn column_degree_stats(m: &CsrMatrix) -> DegreeStats {
    let csc = m.to_csc();
    let degrees: Vec<usize> = (0..csc.cols()).map(|c| csc.col_nnz(c)).collect();
    summarize(&degrees)
}

fn summarize(degrees: &[usize]) -> DegreeStats {
    if degrees.is_empty() {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            std_dev: 0.0,
            coefficient_of_variation: 0.0,
            empty_rows: 0,
        };
    }
    let min = *degrees.iter().min().expect("non-empty");
    let max = *degrees.iter().max().expect("non-empty");
    let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
    let var =
        degrees.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / degrees.len() as f64;
    let std_dev = var.sqrt();
    DegreeStats {
        min,
        max,
        mean,
        std_dev,
        coefficient_of_variation: if mean > 0.0 { std_dev / mean } else { 0.0 },
        empty_rows: degrees.iter().filter(|&&d| d == 0).count(),
    }
}

/// Measures how evenly a workload histogram is spread over bins.
///
/// Returns a pair `(max_over_mean, coefficient_of_variation)`: a perfectly
/// uniform distribution yields `(1.0, 0.0)`; hot spots inflate both values.
/// This is the metric used to summarise the Figure 12/13 heat maps.
pub fn imbalance(histogram: &[u64]) -> (f64, f64) {
    if histogram.is_empty() {
        return (0.0, 0.0);
    }
    let total: u64 = histogram.iter().sum();
    if total == 0 {
        return (0.0, 0.0);
    }
    let mean = total as f64 / histogram.len() as f64;
    let max = *histogram.iter().max().expect("non-empty") as f64;
    let var =
        histogram.iter().map(|&h| (h as f64 - mean).powi(2)).sum::<f64>() / histogram.len() as f64;
    (max / mean, var.sqrt() / mean)
}

/// Gini coefficient of a workload histogram in `[0, 1]`; 0 is perfectly
/// balanced, values near 1 indicate that a few bins hold nearly all work.
pub fn gini(histogram: &[u64]) -> f64 {
    if histogram.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = histogram.iter().map(|&h| h as f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in counts"));
    let n = sorted.len() as f64;
    let sum: f64 = sorted.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x).sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GraphGenerator;

    #[test]
    fn degree_stats_of_identity() {
        let id = CsrMatrix::identity(10);
        let s = degree_stats(&id);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.empty_rows, 0);
    }

    #[test]
    fn power_law_graphs_are_more_skewed_than_uniform() {
        let pl = GraphGenerator::power_law(400, 3000, 2.0, 1).generate().to_csr();
        let er = GraphGenerator::erdos_renyi(400, 3000.0 / (400.0 * 400.0), 1).generate().to_csr();
        let pl_cv = degree_stats(&pl).coefficient_of_variation;
        let er_cv = degree_stats(&er).coefficient_of_variation;
        assert!(pl_cv > er_cv, "power-law CV {pl_cv} should exceed ER CV {er_cv}");
    }

    #[test]
    fn imbalance_of_uniform_histogram_is_one() {
        let (max_over_mean, cv) = imbalance(&[5, 5, 5, 5]);
        assert_eq!(max_over_mean, 1.0);
        assert_eq!(cv, 0.0);
    }

    #[test]
    fn imbalance_detects_hot_spot() {
        let (max_over_mean, cv) = imbalance(&[100, 0, 0, 0]);
        assert_eq!(max_over_mean, 4.0);
        assert!(cv > 1.0);
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[7, 7, 7, 7]), 0.0);
        let concentrated = gini(&[0, 0, 0, 1000]);
        assert!(concentrated > 0.7);
        assert!(concentrated <= 1.0);
    }

    #[test]
    fn column_stats_match_transpose_row_stats() {
        let m = GraphGenerator::rmat(6, 200, 77).generate().to_csr();
        let col = column_degree_stats(&m);
        let row_of_t = degree_stats(&m.transpose());
        assert_eq!(col.min, row_of_t.min);
        assert_eq!(col.max, row_of_t.max);
        assert!((col.mean - row_of_t.mean).abs() < 1e-12);
    }
}
