//! Row-major dense matrix used for GCN feature/weight matrices and as the
//! ground-truth target of the sparse kernels' correctness checks.

use crate::{CooMatrix, Result, SparseError};
use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use neura_sparse::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = DenseMatrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            *m.get_mut(i, i) = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::LengthMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(SparseError::LengthMismatch { indices: rows * cols, values: data.len() });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::LengthMismatch`] when rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(SparseError::LengthMismatch { indices: ncols, values: row.len() });
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix { rows: nrows, cols: ncols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "({row},{col}) out of bounds");
        self.data[row * self.cols + col]
    }

    /// Mutable reference to the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut f64 {
        assert!(row < self.rows && col < self.cols, "({row},{col}) out of bounds");
        &mut self.data[row * self.cols + col]
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Number of entries whose absolute value exceeds `eps`.
    pub fn count_nonzero(&self, eps: f64) -> usize {
        self.data.iter().filter(|v| v.abs() > eps).count()
    }

    /// Dense matrix multiplication `self × rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] when the inner dimensions differ.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != rhs.rows {
            return Err(SparseError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    *out.get_mut(i, j) += a * rhs.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Applies the ReLU non-linearity in place (used by the GCN layer model).
    pub fn relu(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Element-wise maximum absolute difference against another matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Result<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(SparseError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        Ok(self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max))
    }

    /// Converts the dense matrix to COO, dropping exact zeros.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::new(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.get(r, c);
                if v != 0.0 {
                    coo.push(r, c, v).expect("in-bounds by construction");
                }
            }
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
        assert!(err.is_err());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn matmul_rejects_shape_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(SparseError::ShapeMismatch { .. })));
    }

    #[test]
    fn identity_is_neutral_element() {
        let a = DenseMatrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 4.0]]).unwrap();
        let id = DenseMatrix::identity(3);
        assert_eq!(a.matmul(&id).unwrap(), a);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut a = DenseMatrix::from_rows(&[&[-1.0, 2.0], &[0.0, -3.5]]).unwrap();
        a.relu();
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(1, 1), 0.0);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = DenseMatrix::zeros(2, 2);
        let mut b = DenseMatrix::zeros(2, 2);
        *b.get_mut(1, 1) = 0.25;
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.25);
    }

    #[test]
    fn to_coo_drops_zeros() {
        let mut a = DenseMatrix::zeros(2, 2);
        *a.get_mut(0, 1) = 5.0;
        let coo = a.to_coo();
        assert_eq!(coo.nnz(), 1);
    }

    #[test]
    fn count_nonzero_uses_threshold() {
        let a = DenseMatrix::from_rows(&[&[1e-9, 1.0], &[0.0, -2.0]]).unwrap();
        assert_eq!(a.count_nonzero(1e-6), 2);
        assert_eq!(a.count_nonzero(0.0), 3);
    }
}
