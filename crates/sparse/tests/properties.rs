//! Property-based tests for the sparse-matrix substrate.

use neura_sparse::gen::GraphGenerator;
use neura_sparse::spgemm::{self, Dataflow};
use neura_sparse::{bloat, spmm, CooMatrix, CsrMatrix, DenseMatrix};
use proptest::prelude::*;

/// Strategy producing a small random sparse matrix together with its shape.
fn arb_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    (1..max_dim, 1..max_dim).prop_flat_map(move |(rows, cols)| {
        let entry = (0..rows, 0..cols, -5.0f64..5.0);
        proptest::collection::vec(entry, 0..max_nnz).prop_map(move |entries| {
            let mut coo = CooMatrix::new(rows, cols);
            for (r, c, v) in entries {
                coo.push(r, c, v).unwrap();
            }
            coo.to_csr()
        })
    })
}

/// A pair of matrices with compatible shapes for multiplication.
fn arb_pair() -> impl Strategy<Value = (CsrMatrix, CsrMatrix)> {
    (1usize..24, 1usize..24, 1usize..24).prop_flat_map(|(m, k, n)| {
        let a_entries = proptest::collection::vec((0..m, 0..k, -3.0f64..3.0), 0..60);
        let b_entries = proptest::collection::vec((0..k, 0..n, -3.0f64..3.0), 0..60);
        (a_entries, b_entries).prop_map(move |(ae, be)| {
            let mut a = CooMatrix::new(m, k);
            for (r, c, v) in ae {
                a.push(r, c, v).unwrap();
            }
            let mut b = CooMatrix::new(k, n);
            for (r, c, v) in be {
                b.push(r, c, v).unwrap();
            }
            (a.to_csr(), b.to_csr())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR -> CSC -> CSR round trips are lossless.
    #[test]
    fn csr_csc_round_trip(m in arb_matrix(32, 128)) {
        let back = m.to_csc().to_csr();
        prop_assert_eq!(m.nnz(), back.nnz());
        for (r, c, v) in m.iter() {
            prop_assert_eq!(back.get(r, c), v);
        }
    }

    /// COO -> dense and COO -> CSR -> dense agree entry-for-entry.
    #[test]
    fn coo_conversions_agree(m in arb_matrix(24, 96)) {
        let coo = m.to_coo();
        let via_dense = coo.to_dense();
        let via_csr = coo.to_csr().to_dense();
        prop_assert!(via_dense.max_abs_diff(&via_csr).unwrap() < 1e-12);
    }

    /// All four SpGEMM dataflows agree with the dense reference product.
    #[test]
    fn spgemm_dataflows_agree((a, b) in arb_pair()) {
        let dense = a.to_dense().matmul(&b.to_dense()).unwrap();
        for dataflow in [Dataflow::InnerProduct, Dataflow::OuterProduct, Dataflow::RowWise, Dataflow::TiledRowWise(4)] {
            let c = spgemm::multiply(&a, &b, dataflow).unwrap();
            prop_assert!(c.to_dense().max_abs_diff(&dense).unwrap() < 1e-6);
        }
    }

    /// The bloat report is internally consistent: pp >= nnz_out, fanin >= 1 when non-empty.
    #[test]
    fn bloat_report_invariants((a, b) in arb_pair()) {
        prop_assume!(a.cols() == b.rows());
        let report = bloat::analyze(&a, &b);
        prop_assert!(report.intermediate_partial_products >= report.output_nnz as u64);
        if report.output_nnz > 0 {
            prop_assert!(report.average_reduction_fanin() >= 1.0);
            prop_assert!(report.bloat_percent >= 0.0);
        }
        prop_assert_eq!(
            report.intermediate_partial_products,
            bloat::partial_product_count(&a, &b)
        );
    }

    /// SpMM against a random dense matrix matches the dense-dense reference.
    #[test]
    fn spmm_matches_dense(a in arb_matrix(24, 96), cols in 1usize..8, seed in 0u64..1000) {
        let x = neura_sparse::gen::feature_matrix(a.cols(), cols, seed);
        let got = spmm::spmm(&a, &x).unwrap();
        let expected = a.to_dense().matmul(&x).unwrap();
        prop_assert!(got.max_abs_diff(&expected).unwrap() < 1e-9);
    }

    /// Transposing twice is the identity.
    #[test]
    fn transpose_is_involution(m in arb_matrix(24, 96)) {
        let tt = m.transpose().transpose();
        prop_assert_eq!(m.nnz(), tt.nnz());
        for (r, c, v) in m.iter() {
            prop_assert_eq!(tt.get(r, c), v);
        }
    }

    /// Generated graphs always fit their declared shape and dedup is idempotent.
    #[test]
    fn generators_stay_in_bounds(seed in 0u64..500, nodes in 8usize..64, edges in 1usize..400) {
        let g = GraphGenerator::power_law(nodes, edges, 2.2, seed).generate();
        prop_assert_eq!(g.rows(), nodes);
        prop_assert_eq!(g.cols(), nodes);
        for &(r, c, _) in g.iter() {
            prop_assert!(r < nodes && c < nodes);
        }
        let csr = g.to_csr();
        prop_assert!(csr.nnz() <= edges);
    }

    /// Dense matmul with the identity is a no-op (sanity for the reference kernel).
    #[test]
    fn dense_identity_neutral(rows in 1usize..12, cols in 1usize..12, seed in 0u64..100) {
        let x = neura_sparse::gen::feature_matrix(rows, cols, seed);
        let id = DenseMatrix::identity(rows);
        let y = id.matmul(&x).unwrap();
        prop_assert!(y.max_abs_diff(&x).unwrap() < 1e-12);
    }
}
