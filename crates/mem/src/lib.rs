//! HBM2 / DRAM timing model and memory controller — the reproduction's
//! substitute for DRAMsim3.
//!
//! NeuraChip couples each of its eight tiles to one HBM channel with a peak
//! bandwidth of 16 GB/s (128 GB/s aggregate, Table 5).  The paper integrates
//! DRAMsim3 for memory-request latencies; this crate provides an equivalent
//! first-order model:
//!
//! * [`HbmTiming`] — row-buffer hit/miss/conflict latencies, burst size and
//!   per-channel bandwidth,
//! * [`Bank`]/[`Channel`] — open-row tracking per bank and bandwidth-limited
//!   data return,
//! * [`MemoryController`] — per-tile controller with read/write queues,
//!   request coalescing (Step 3 of the paper's on-chip dataflow) and
//!   utilisation statistics,
//! * [`HbmStack`] — the eight-channel assembly with an interleaved address
//!   map.
//!
//! # Example
//!
//! ```
//! use neura_mem::{HbmTiming, MemoryController, MemoryRequest};
//! use neura_sim::Cycle;
//!
//! let mut ctrl = MemoryController::new(0, HbmTiming::hbm2(), 64);
//! let id = ctrl.submit(MemoryRequest::read(0x1000, 64), Cycle(0)).unwrap();
//! let mut done = Vec::new();
//! for c in 0..200u64 {
//!     ctrl.tick(Cycle(c), &mut done);
//!     if !done.is_empty() { break; }
//! }
//! assert_eq!(done[0].id, id);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bank;
pub mod channel;
pub mod controller;
pub mod hbm;
pub mod request;
pub mod timing;

pub use bank::Bank;
pub use channel::Channel;
pub use controller::{ControllerStats, MemoryController};
pub use hbm::HbmStack;
pub use request::{MemoryRequest, MemoryResponse, RequestId, RequestKind};
pub use timing::{HbmPreset, HbmTiming};
