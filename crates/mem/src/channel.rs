//! One HBM channel: a set of banks plus a bandwidth-limited data bus.

use crate::bank::{Bank, RowBufferOutcome};
use crate::HbmTiming;
use serde::{Deserialize, Serialize};

/// A single HBM channel.
///
/// Addresses are mapped bank-interleaved at burst granularity: consecutive
/// bursts fall in consecutive banks, which is what lets coalesced streaming
/// reads approach peak bandwidth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Channel {
    timing: HbmTiming,
    banks: Vec<Bank>,
    /// Cycle until which the shared data bus is busy.
    bus_busy_until: u64,
    bytes_transferred: u64,
    transactions: u64,
}

impl Channel {
    /// Creates a channel with the given timing.
    pub fn new(timing: HbmTiming) -> Self {
        let banks = (0..timing.banks_per_channel).map(|_| Bank::new()).collect();
        Channel { timing, banks, bus_busy_until: 0, bytes_transferred: 0, transactions: 0 }
    }

    /// The channel's timing parameters.
    pub fn timing(&self) -> &HbmTiming {
        &self.timing
    }

    /// Maps a byte address to (bank index, row index) within this channel.
    pub fn map_address(&self, addr: u64) -> (usize, u64) {
        let burst = addr / self.timing.burst_bytes as u64;
        let bank = (burst % self.banks.len() as u64) as usize;
        let row = addr / self.timing.row_bytes as u64;
        (bank, row)
    }

    /// Services an access of `bytes` bytes at `addr`, arriving at `now`.
    /// Returns the completion cycle.
    pub fn access(&mut self, addr: u64, bytes: usize, now: u64) -> (u64, RowBufferOutcome) {
        let (bank_idx, row) = self.map_address(addr);
        let (bank_done, outcome) = self.banks[bank_idx].access(row, now, &self.timing);
        // The data transfer occupies the shared bus after the bank produces it.
        let transfer = self.timing.transfer_cycles(bytes.max(1));
        let bus_start = bank_done.max(self.bus_busy_until);
        let done = bus_start + transfer + self.timing.base_latency;
        self.bus_busy_until = bus_start + transfer;
        self.bytes_transferred += bytes as u64;
        self.transactions += 1;
        (done, outcome)
    }

    /// Total bytes moved so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Total transactions serviced so far.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Achieved bandwidth in bytes/cycle measured over `elapsed_cycles`.
    pub fn achieved_bandwidth(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            0.0
        } else {
            self.bytes_transferred as f64 / elapsed_cycles as f64
        }
    }

    /// Aggregate row-buffer hit rate over all banks.
    pub fn hit_rate(&self) -> f64 {
        let (mut h, mut m, mut c) = (0u64, 0u64, 0u64);
        for bank in &self.banks {
            let (bh, bm, bc) = bank.stats();
            h += bh;
            m += bm;
            c += bc;
        }
        let total = h + m + c;
        if total == 0 {
            0.0
        } else {
            h as f64 / total as f64
        }
    }

    /// Cycle until which the data bus is occupied.
    pub fn bus_busy_until(&self) -> u64 {
        self.bus_busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_mapping_interleaves_banks() {
        let ch = Channel::new(HbmTiming::hbm2());
        let (b0, _) = ch.map_address(0);
        let (b1, _) = ch.map_address(64);
        let (b2, _) = ch.map_address(128);
        assert_ne!(b0, b1);
        assert_ne!(b1, b2);
    }

    #[test]
    fn sequential_bursts_use_different_banks_and_pipeline() {
        let mut ch = Channel::new(HbmTiming::hbm2());
        let (done_a, _) = ch.access(0, 64, 0);
        let (done_b, _) = ch.access(64, 64, 0);
        // Different banks: the second access should not pay a full serialised
        // bank latency on top of the first, only bus serialisation.
        assert!(done_b < done_a + HbmTiming::hbm2().row_miss_latency);
    }

    #[test]
    fn same_row_access_is_faster_than_conflicting_rows() {
        let t = HbmTiming::hbm2();
        let mut hit_channel = Channel::new(t);
        hit_channel.access(0, 64, 0);
        let (hit_done, outcome_hit) = hit_channel.access(0, 64, 500);
        assert_eq!(outcome_hit, RowBufferOutcome::Hit);

        let mut conflict_channel = Channel::new(t);
        conflict_channel.access(0, 64, 0);
        // Same bank (same burst-aligned address modulo banks), different row.
        let far = (t.row_bytes * t.banks_per_channel) as u64;
        let (conflict_done, outcome_conf) = conflict_channel.access(far, 64, 500);
        assert_eq!(outcome_conf, RowBufferOutcome::Conflict);
        assert!(conflict_done > hit_done);
    }

    #[test]
    fn bandwidth_accounting_accumulates() {
        let mut ch = Channel::new(HbmTiming::hbm2());
        ch.access(0, 64, 0);
        ch.access(64, 64, 0);
        assert_eq!(ch.bytes_transferred(), 128);
        assert_eq!(ch.transactions(), 2);
        assert!(ch.achieved_bandwidth(100) > 0.0);
        assert_eq!(ch.achieved_bandwidth(0), 0.0);
    }

    #[test]
    fn bus_contention_serialises_large_transfers() {
        let mut ch = Channel::new(HbmTiming::hbm2());
        // Two large transfers at the same time must be separated by at least
        // the transfer time of the first on the shared bus.
        let (done_a, _) = ch.access(0, 1024, 0);
        let (done_b, _) = ch.access(4096, 1024, 0);
        let transfer = HbmTiming::hbm2().transfer_cycles(1024);
        assert!(done_b >= done_a.min(ch.bus_busy_until()) && done_b >= transfer);
        assert!(ch.bus_busy_until() >= 2 * transfer);
    }

    #[test]
    fn hit_rate_zero_when_untouched() {
        let ch = Channel::new(HbmTiming::hbm2());
        assert_eq!(ch.hit_rate(), 0.0);
    }
}
