//! The full HBM stack: eight channels, one per NeuraChip tile.

use crate::{HbmTiming, MemoryController};
use serde::{Deserialize, Serialize};

/// Aggregate description of an HBM stack attached to the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmConfig {
    /// Number of channels (== number of tiles; the paper uses 8).
    pub channels: usize,
    /// Timing of each channel.
    pub timing: HbmTiming,
    /// Capacity of each controller's read/write queues.
    pub controller_queue_capacity: usize,
}

impl Default for HbmConfig {
    fn default() -> Self {
        HbmConfig { channels: 8, timing: HbmTiming::hbm2(), controller_queue_capacity: 64 }
    }
}

/// The set of per-tile memory controllers backed by one HBM stack.
#[derive(Debug)]
pub struct HbmStack {
    controllers: Vec<MemoryController>,
    config: HbmConfig,
}

impl HbmStack {
    /// Builds a stack with one controller per channel.
    pub fn new(config: HbmConfig) -> Self {
        let controllers = (0..config.channels)
            .map(|tile| {
                MemoryController::new(tile, config.timing, config.controller_queue_capacity)
            })
            .collect();
        HbmStack { controllers, config }
    }

    /// The stack configuration.
    pub fn config(&self) -> &HbmConfig {
        &self.config
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.controllers.len()
    }

    /// Access the controller of a specific channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel >= self.channels()`.
    pub fn controller(&mut self, channel: usize) -> &mut MemoryController {
        &mut self.controllers[channel]
    }

    /// Immutable access to a controller.
    pub fn controller_ref(&self, channel: usize) -> &MemoryController {
        &self.controllers[channel]
    }

    /// Iterate mutably over all controllers.
    pub fn controllers_mut(&mut self) -> impl Iterator<Item = &mut MemoryController> {
        self.controllers.iter_mut()
    }

    /// Aggregate peak bandwidth of the stack in GB/s at the given clock (GHz).
    pub fn peak_bandwidth_gbps(&self, frequency_ghz: f64) -> f64 {
        self.config.timing.peak_bandwidth_gbps(frequency_ghz) * self.channels() as f64
    }

    /// Total bytes moved across all channels so far.
    pub fn total_bytes_transferred(&self) -> u64 {
        self.controllers.iter().map(|c| c.channel().bytes_transferred()).sum()
    }

    /// Total requests still pending anywhere in the stack.
    pub fn total_pending(&self) -> usize {
        self.controllers.iter().map(|c| c.pending()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryRequest;
    use neura_sim::Cycle;

    #[test]
    fn default_config_matches_paper() {
        let stack = HbmStack::new(HbmConfig::default());
        assert_eq!(stack.channels(), 8);
        assert!((stack.peak_bandwidth_gbps(1.0) - 128.0).abs() < 1e-9);
    }

    #[test]
    fn channels_operate_independently() {
        let mut stack = HbmStack::new(HbmConfig::default());
        stack.controller(0).submit(MemoryRequest::read(0, 64), Cycle(0)).unwrap();
        stack.controller(5).submit(MemoryRequest::read(0, 64), Cycle(0)).unwrap();
        assert_eq!(stack.total_pending(), 2);
        let mut done0 = Vec::new();
        let mut done5 = Vec::new();
        for c in 0..300u64 {
            stack.controller(0).tick(Cycle(c), &mut done0);
            stack.controller(5).tick(Cycle(c), &mut done5);
        }
        assert_eq!(done0.len(), 1);
        assert_eq!(done5.len(), 1);
        assert_eq!(stack.total_pending(), 0);
        assert_eq!(stack.total_bytes_transferred(), 128);
    }

    #[test]
    fn dual_stack_has_double_bandwidth() {
        let dual =
            HbmStack::new(HbmConfig { timing: HbmTiming::hbm2_dual_stack(), ..Default::default() });
        assert!((dual.peak_bandwidth_gbps(1.0) - 256.0).abs() < 1e-9);
    }
}
