//! DRAM timing and geometry parameters.

use serde::{Deserialize, Serialize};

/// Timing and geometry of one HBM channel.
///
/// The defaults follow HBM2 as configured for NeuraChip: a 1 GHz accelerator
/// clock, 16 GB/s per channel (16 bytes per accelerator cycle), 64-byte
/// bursts and DRAMsim3-like row-buffer latencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmTiming {
    /// Latency (cycles) of an access that hits the open row.
    pub row_hit_latency: u64,
    /// Latency (cycles) of an access to a closed bank (activate + column access).
    pub row_miss_latency: u64,
    /// Latency (cycles) of an access that conflicts with another open row
    /// (precharge + activate + column access).
    pub row_conflict_latency: u64,
    /// Bytes transferred per burst (transaction granularity).
    pub burst_bytes: usize,
    /// Peak data bytes the channel can move per accelerator cycle.
    pub bytes_per_cycle: usize,
    /// Number of banks per channel.
    pub banks_per_channel: usize,
    /// Bytes covered by one DRAM row (row-buffer size).
    pub row_bytes: usize,
    /// Additional fixed pipeline latency of the PHY/controller path.
    pub base_latency: u64,
}

impl HbmTiming {
    /// HBM2 parameters used throughout the evaluation (16 GB/s per channel at 1 GHz).
    pub fn hbm2() -> Self {
        HbmTiming {
            row_hit_latency: 18,
            row_miss_latency: 36,
            row_conflict_latency: 54,
            burst_bytes: 64,
            bytes_per_cycle: 16,
            banks_per_channel: 16,
            row_bytes: 1024,
            base_latency: 20,
        }
    }

    /// A "dual-stacked" HBM configuration with twice the per-channel
    /// bandwidth (used for the 256 GB/s entry of Table 5, footnote α).
    pub fn hbm2_dual_stack() -> Self {
        HbmTiming { bytes_per_cycle: 32, ..Self::hbm2() }
    }

    /// DDR4-like parameters for the CPU baseline calibration (136 GB/s
    /// aggregate over the socket, higher latencies).
    pub fn ddr4() -> Self {
        HbmTiming {
            row_hit_latency: 22,
            row_miss_latency: 44,
            row_conflict_latency: 66,
            burst_bytes: 64,
            bytes_per_cycle: 8,
            banks_per_channel: 16,
            row_bytes: 8192,
            base_latency: 40,
        }
    }

    /// Cycles needed to stream `bytes` through the channel at peak bandwidth.
    pub fn transfer_cycles(&self, bytes: usize) -> u64 {
        (bytes as u64).div_ceil(self.bytes_per_cycle as u64)
    }

    /// Peak bandwidth in GB/s given the accelerator clock frequency in GHz.
    pub fn peak_bandwidth_gbps(&self, frequency_ghz: f64) -> f64 {
        self.bytes_per_cycle as f64 * frequency_ghz
    }
}

impl Default for HbmTiming {
    fn default() -> Self {
        Self::hbm2()
    }
}

/// The named [`HbmTiming`] configurations, so sweeps and tuners can treat
/// the memory system as a discrete axis (a preset name) instead of eight
/// free timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HbmPreset {
    /// [`HbmTiming::hbm2`] — the paper's evaluated memory system.
    Hbm2,
    /// [`HbmTiming::hbm2_dual_stack`] — twice the per-channel bandwidth
    /// (Table 5 footnote α).
    Hbm2DualStack,
    /// [`HbmTiming::ddr4`] — the CPU-baseline calibration timing.
    Ddr4,
}

impl HbmPreset {
    /// All presets, in sweep order (paper default first).
    pub const ALL: [HbmPreset; 3] = [HbmPreset::Hbm2, HbmPreset::Hbm2DualStack, HbmPreset::Ddr4];

    /// Stable lower-case name used in run IDs and artifact params.
    pub fn name(&self) -> &'static str {
        match self {
            HbmPreset::Hbm2 => "hbm2",
            HbmPreset::Hbm2DualStack => "hbm2-dual",
            HbmPreset::Ddr4 => "ddr4",
        }
    }

    /// The timing parameters this preset names.
    pub fn timing(&self) -> HbmTiming {
        match self {
            HbmPreset::Hbm2 => HbmTiming::hbm2(),
            HbmPreset::Hbm2DualStack => HbmTiming::hbm2_dual_stack(),
            HbmPreset::Ddr4 => HbmTiming::ddr4(),
        }
    }

    /// Reverse lookup: which preset (if any) a timing struct corresponds to.
    pub fn of(timing: &HbmTiming) -> Option<HbmPreset> {
        Self::ALL.into_iter().find(|p| p.timing() == *timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm2_matches_paper_bandwidth() {
        let t = HbmTiming::hbm2();
        // 16 bytes/cycle at 1 GHz = 16 GB/s per channel; 8 channels = 128 GB/s.
        assert!((t.peak_bandwidth_gbps(1.0) - 16.0).abs() < 1e-12);
        assert!((t.peak_bandwidth_gbps(1.0) * 8.0 - 128.0).abs() < 1e-12);
    }

    #[test]
    fn dual_stack_doubles_bandwidth() {
        let single = HbmTiming::hbm2();
        let dual = HbmTiming::hbm2_dual_stack();
        assert_eq!(dual.bytes_per_cycle, 2 * single.bytes_per_cycle);
    }

    #[test]
    fn latencies_are_ordered() {
        let t = HbmTiming::hbm2();
        assert!(t.row_hit_latency < t.row_miss_latency);
        assert!(t.row_miss_latency < t.row_conflict_latency);
    }

    #[test]
    fn transfer_cycles_round_up() {
        let t = HbmTiming::hbm2();
        assert_eq!(t.transfer_cycles(0), 0);
        assert_eq!(t.transfer_cycles(1), 1);
        assert_eq!(t.transfer_cycles(16), 1);
        assert_eq!(t.transfer_cycles(17), 2);
        assert_eq!(t.transfer_cycles(64), 4);
    }

    #[test]
    fn default_is_hbm2() {
        assert_eq!(HbmTiming::default(), HbmTiming::hbm2());
    }

    #[test]
    fn presets_round_trip_through_reverse_lookup() {
        for preset in HbmPreset::ALL {
            assert_eq!(HbmPreset::of(&preset.timing()), Some(preset));
            assert!(!preset.name().is_empty());
        }
        let custom = HbmTiming { base_latency: 999, ..HbmTiming::hbm2() };
        assert_eq!(HbmPreset::of(&custom), None);
    }
}
