//! Memory request and response types.

use serde::{Deserialize, Serialize};

/// Identifier assigned to a request when it is accepted by a controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

/// Whether a request reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Read `bytes` from `addr`.
    Read,
    /// Write `bytes` to `addr`.
    Write,
}

/// A memory request as issued by a NeuraCore, NeuraMem eviction or the
/// dispatcher's instruction fetch path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryRequest {
    /// Byte address.
    pub addr: u64,
    /// Number of bytes requested.
    pub bytes: usize,
    /// Read or write.
    pub kind: RequestKind,
}

impl MemoryRequest {
    /// Creates a read request.
    pub fn read(addr: u64, bytes: usize) -> Self {
        MemoryRequest { addr, bytes, kind: RequestKind::Read }
    }

    /// Creates a write request.
    pub fn write(addr: u64, bytes: usize) -> Self {
        MemoryRequest { addr, bytes, kind: RequestKind::Write }
    }

    /// Returns `true` for read requests.
    pub fn is_read(&self) -> bool {
        matches!(self.kind, RequestKind::Read)
    }

    /// Address of the last byte touched by this request.
    pub fn end_addr(&self) -> u64 {
        self.addr + self.bytes.saturating_sub(1) as u64
    }

    /// Whether `other` starts exactly where this request ends (candidates for
    /// coalescing into one DRAM transaction).
    pub fn is_contiguous_with(&self, other: &MemoryRequest) -> bool {
        self.kind == other.kind && self.addr + self.bytes as u64 == other.addr
    }
}

/// Completion record returned by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryResponse {
    /// Identifier returned by [`MemoryController::submit`](crate::MemoryController::submit).
    pub id: RequestId,
    /// The original request.
    pub request: MemoryRequest,
    /// Cycle at which the request was accepted.
    pub issued_at: u64,
    /// Cycle at which the data became available.
    pub completed_at: u64,
}

impl MemoryResponse {
    /// Total latency in cycles experienced by the request.
    pub fn latency(&self) -> u64 {
        self.completed_at - self.issued_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert!(MemoryRequest::read(0, 8).is_read());
        assert!(!MemoryRequest::write(0, 8).is_read());
    }

    #[test]
    fn contiguity_requires_same_kind_and_adjacency() {
        let a = MemoryRequest::read(0, 64);
        let b = MemoryRequest::read(64, 64);
        let c = MemoryRequest::write(128, 64);
        assert!(a.is_contiguous_with(&b));
        assert!(!b.is_contiguous_with(&a));
        assert!(!b.is_contiguous_with(&c));
    }

    #[test]
    fn end_addr_is_inclusive() {
        let r = MemoryRequest::read(100, 64);
        assert_eq!(r.end_addr(), 163);
        let zero = MemoryRequest::read(10, 0);
        assert_eq!(zero.end_addr(), 10);
    }

    #[test]
    fn response_latency() {
        let resp = MemoryResponse {
            id: RequestId(1),
            request: MemoryRequest::read(0, 64),
            issued_at: 10,
            completed_at: 52,
        };
        assert_eq!(resp.latency(), 42);
    }
}
