//! A single DRAM bank with an open-row (row-buffer) policy.

use crate::HbmTiming;
use serde::{Deserialize, Serialize};

/// Classification of an access relative to the bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowBufferOutcome {
    /// The requested row was already open.
    Hit,
    /// The bank was idle (no open row); an activate was required.
    Miss,
    /// A different row was open; precharge + activate were required.
    Conflict,
}

/// State of one DRAM bank.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
    hits: u64,
    misses: u64,
    conflicts: u64,
}

impl Bank {
    /// Creates a bank with no open row.
    pub fn new() -> Self {
        Bank::default()
    }

    /// Services an access to `row` arriving at `now`, returning the cycle at
    /// which data is available and the row-buffer outcome.
    ///
    /// The bank is busy until the returned completion cycle; a request that
    /// arrives earlier queues behind it (modelled by starting from
    /// `max(now, busy_until)`).
    pub fn access(&mut self, row: u64, now: u64, timing: &HbmTiming) -> (u64, RowBufferOutcome) {
        let start = now.max(self.busy_until);
        let (latency, outcome) = match self.open_row {
            Some(open) if open == row => (timing.row_hit_latency, RowBufferOutcome::Hit),
            Some(_) => (timing.row_conflict_latency, RowBufferOutcome::Conflict),
            None => (timing.row_miss_latency, RowBufferOutcome::Miss),
        };
        match outcome {
            RowBufferOutcome::Hit => self.hits += 1,
            RowBufferOutcome::Miss => self.misses += 1,
            RowBufferOutcome::Conflict => self.conflicts += 1,
        }
        self.open_row = Some(row);
        let done = start + latency;
        self.busy_until = done;
        (done, outcome)
    }

    /// Cycle until which the bank is occupied.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// (hits, misses, conflicts) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.conflicts)
    }

    /// Row-buffer hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.conflicts;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_a_miss() {
        let mut bank = Bank::new();
        let t = HbmTiming::hbm2();
        let (done, outcome) = bank.access(5, 0, &t);
        assert_eq!(outcome, RowBufferOutcome::Miss);
        assert_eq!(done, t.row_miss_latency);
        assert_eq!(bank.open_row(), Some(5));
    }

    #[test]
    fn repeated_access_hits() {
        let mut bank = Bank::new();
        let t = HbmTiming::hbm2();
        bank.access(5, 0, &t);
        let (_, outcome) = bank.access(5, 100, &t);
        assert_eq!(outcome, RowBufferOutcome::Hit);
        assert_eq!(bank.stats(), (1, 1, 0));
    }

    #[test]
    fn row_change_is_a_conflict() {
        let mut bank = Bank::new();
        let t = HbmTiming::hbm2();
        bank.access(5, 0, &t);
        let (_, outcome) = bank.access(6, 100, &t);
        assert_eq!(outcome, RowBufferOutcome::Conflict);
        assert_eq!(bank.open_row(), Some(6));
    }

    #[test]
    fn back_to_back_requests_serialise() {
        let mut bank = Bank::new();
        let t = HbmTiming::hbm2();
        let (first_done, _) = bank.access(1, 0, &t);
        let (second_done, _) = bank.access(1, 0, &t);
        assert!(second_done >= first_done + t.row_hit_latency);
    }

    #[test]
    fn hit_rate_reflects_history() {
        let mut bank = Bank::new();
        let t = HbmTiming::hbm2();
        assert_eq!(bank.hit_rate(), 0.0);
        bank.access(1, 0, &t);
        bank.access(1, 0, &t);
        bank.access(1, 0, &t);
        bank.access(2, 0, &t);
        assert!((bank.hit_rate() - 0.5).abs() < 1e-12);
    }
}
