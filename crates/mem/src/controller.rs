//! Per-tile memory controller with request coalescing.
//!
//! Step 3 of the paper's on-chip dataflow: "The Memory Controller coalesces
//! requests for contiguous memory locations into a singular transaction and
//! reorganizes memory transactions to enhance spatial locality."

use crate::channel::Channel;
use crate::request::{MemoryRequest, MemoryResponse, RequestId, RequestKind};
use crate::HbmTiming;
use neura_sim::{Component, Cycle};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Aggregate statistics exported by a [`MemoryController`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Requests accepted.
    pub requests_accepted: u64,
    /// Requests rejected because the queue was full.
    pub requests_rejected: u64,
    /// DRAM transactions issued after coalescing.
    pub transactions_issued: u64,
    /// Requests merged into a preceding contiguous transaction.
    pub requests_coalesced: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Sum of request latencies (for mean latency).
    pub total_latency: u64,
    /// Number of completed requests.
    pub completed: u64,
    /// Peak number of in-flight requests observed.
    pub peak_in_flight: usize,
}

impl ControllerStats {
    /// Mean request latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.completed as f64
        }
    }

    /// Fraction of requests that were folded into an earlier transaction.
    pub fn coalescing_rate(&self) -> f64 {
        if self.requests_accepted == 0 {
            0.0
        } else {
            self.requests_coalesced as f64 / self.requests_accepted as f64
        }
    }
}

#[derive(Debug, Clone)]
struct PendingRequest {
    id: RequestId,
    request: MemoryRequest,
    issued_at: u64,
}

#[derive(Debug, Clone)]
struct InFlight {
    response: MemoryResponse,
}

/// A per-tile memory controller fronting one HBM channel.
#[derive(Debug)]
pub struct MemoryController {
    tile_id: usize,
    name: String,
    channel: Channel,
    queue_capacity: usize,
    read_queue: VecDeque<PendingRequest>,
    write_queue: VecDeque<PendingRequest>,
    in_flight: Vec<InFlight>,
    next_id: u64,
    stats: ControllerStats,
    /// Maximum number of DRAM transactions issued per cycle.
    issue_width: usize,
}

impl MemoryController {
    /// Creates a controller for tile `tile_id` with the given queue capacity.
    pub fn new(tile_id: usize, timing: HbmTiming, queue_capacity: usize) -> Self {
        MemoryController {
            tile_id,
            name: format!("mem-controller-{tile_id}"),
            channel: Channel::new(timing),
            queue_capacity: queue_capacity.max(1),
            read_queue: VecDeque::new(),
            write_queue: VecDeque::new(),
            in_flight: Vec::new(),
            next_id: 0,
            stats: ControllerStats::default(),
            issue_width: 4,
        }
    }

    /// The tile this controller belongs to.
    pub fn tile_id(&self) -> usize {
        self.tile_id
    }

    /// Submits a request; returns its id, or `None` when the queue is full
    /// (back-pressure to the requester).
    pub fn submit(&mut self, request: MemoryRequest, now: Cycle) -> Option<RequestId> {
        let queue = match request.kind {
            RequestKind::Read => &mut self.read_queue,
            RequestKind::Write => &mut self.write_queue,
        };
        if queue.len() >= self.queue_capacity {
            self.stats.requests_rejected += 1;
            return None;
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        queue.push_back(PendingRequest { id, request, issued_at: now.as_u64() });
        self.stats.requests_accepted += 1;
        match request.kind {
            RequestKind::Read => self.stats.bytes_read += request.bytes as u64,
            RequestKind::Write => self.stats.bytes_written += request.bytes as u64,
        }
        Some(id)
    }

    /// Number of requests waiting or in flight.
    pub fn pending(&self) -> usize {
        self.read_queue.len() + self.write_queue.len() + self.in_flight.len()
    }

    /// Number of in-flight DRAM transactions (issued, not yet completed) —
    /// the "In-Flight InstX"/memory-pressure metric of Figure 11.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Queued-but-unissued requests as `(reads, writes)` — the per-channel
    /// queue-depth signal the chip profiler samples each cycle.
    pub fn queue_depths(&self) -> (usize, usize) {
        (self.read_queue.len(), self.write_queue.len())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// The underlying channel (for bandwidth and hit-rate metrics).
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Advances one cycle: issues coalesced transactions (reads prioritised)
    /// and appends completed responses to `completed`.
    pub fn tick(&mut self, now: Cycle, completed: &mut Vec<MemoryResponse>) {
        let cycle = now.as_u64();

        // Retire finished transactions.
        let mut index = 0;
        while index < self.in_flight.len() {
            if self.in_flight[index].response.completed_at <= cycle {
                let done = self.in_flight.swap_remove(index);
                self.stats.completed += 1;
                self.stats.total_latency += done.response.latency();
                completed.push(done.response);
            } else {
                index += 1;
            }
        }

        // Issue new transactions, reads first (they stall compute), writes after.
        for _ in 0..self.issue_width {
            let from_reads = !self.read_queue.is_empty();
            let queue = if from_reads { &mut self.read_queue } else { &mut self.write_queue };
            let Some(head) = queue.pop_front() else { break };

            // Coalesce immediately-contiguous same-kind requests into one transaction.
            let mut group = vec![head];
            while let Some(next) = queue.front() {
                let last = &group[group.len() - 1].request;
                if last.is_contiguous_with(&next.request) && group.len() < 8 {
                    group.push(queue.pop_front().expect("front exists"));
                } else {
                    break;
                }
            }
            let total_bytes: usize = group.iter().map(|p| p.request.bytes).sum();
            let base_addr = group[0].request.addr;
            let (done_at, _) = self.channel.access(base_addr, total_bytes, cycle);
            self.stats.transactions_issued += 1;
            self.stats.requests_coalesced += (group.len() - 1) as u64;
            for pending in group {
                self.in_flight.push(InFlight {
                    response: MemoryResponse {
                        id: pending.id,
                        request: pending.request,
                        issued_at: pending.issued_at,
                        completed_at: done_at,
                    },
                });
            }
        }
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight.len());
    }
}

impl Component for MemoryController {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, cycle: Cycle) {
        // When driven as a bare component the completions are discarded;
        // the accelerator model drives `tick(now, &mut Vec)` directly instead.
        let mut sink = Vec::new();
        MemoryController::tick(self, cycle, &mut sink);
    }

    fn is_idle(&self) -> bool {
        self.pending() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(ctrl: &mut MemoryController, cycles: u64) -> Vec<MemoryResponse> {
        let mut out = Vec::new();
        for c in 0..cycles {
            ctrl.tick(Cycle(c), &mut out);
        }
        out
    }

    #[test]
    fn single_read_completes_with_reasonable_latency() {
        let mut ctrl = MemoryController::new(0, HbmTiming::hbm2(), 32);
        let id = ctrl.submit(MemoryRequest::read(0x100, 64), Cycle(0)).unwrap();
        let done = drive(&mut ctrl, 200);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        let latency = done[0].latency();
        assert!(latency >= HbmTiming::hbm2().row_hit_latency);
        assert!(latency < 150, "latency {latency} too high for an unloaded channel");
    }

    #[test]
    fn queue_capacity_applies_back_pressure() {
        let mut ctrl = MemoryController::new(0, HbmTiming::hbm2(), 2);
        assert!(ctrl.submit(MemoryRequest::read(0, 64), Cycle(0)).is_some());
        assert!(ctrl.submit(MemoryRequest::read(64, 64), Cycle(0)).is_some());
        assert!(ctrl.submit(MemoryRequest::read(128, 64), Cycle(0)).is_none());
        assert_eq!(ctrl.stats().requests_rejected, 1);
        // Writes use a separate queue.
        assert!(ctrl.submit(MemoryRequest::write(256, 64), Cycle(0)).is_some());
    }

    #[test]
    fn contiguous_requests_are_coalesced() {
        let mut ctrl = MemoryController::new(0, HbmTiming::hbm2(), 32);
        for i in 0..4u64 {
            ctrl.submit(MemoryRequest::read(i * 64, 64), Cycle(0)).unwrap();
        }
        let done = drive(&mut ctrl, 300);
        assert_eq!(done.len(), 4);
        assert!(ctrl.stats().requests_coalesced >= 3);
        assert!(ctrl.stats().transactions_issued < 4);
    }

    #[test]
    fn scattered_requests_are_not_coalesced() {
        let mut ctrl = MemoryController::new(0, HbmTiming::hbm2(), 32);
        for i in 0..4u64 {
            ctrl.submit(MemoryRequest::read(i * 10_000, 64), Cycle(0)).unwrap();
        }
        drive(&mut ctrl, 300);
        assert_eq!(ctrl.stats().requests_coalesced, 0);
        assert_eq!(ctrl.stats().transactions_issued, 4);
    }

    #[test]
    fn every_submitted_request_eventually_completes() {
        let mut ctrl = MemoryController::new(0, HbmTiming::hbm2(), 128);
        let mut ids = Vec::new();
        for i in 0..50u64 {
            ids.push(ctrl.submit(MemoryRequest::read(i * 4096, 64), Cycle(0)).unwrap());
        }
        let done = drive(&mut ctrl, 5_000);
        assert_eq!(done.len(), 50);
        let mut done_ids: Vec<RequestId> = done.iter().map(|r| r.id).collect();
        done_ids.sort();
        ids.sort();
        assert_eq!(done_ids, ids);
        assert!(ctrl.is_idle());
    }

    #[test]
    fn reads_and_writes_are_tracked_separately() {
        let mut ctrl = MemoryController::new(0, HbmTiming::hbm2(), 32);
        ctrl.submit(MemoryRequest::read(0, 64), Cycle(0)).unwrap();
        ctrl.submit(MemoryRequest::write(1024, 128), Cycle(0)).unwrap();
        drive(&mut ctrl, 300);
        assert_eq!(ctrl.stats().bytes_read, 64);
        assert_eq!(ctrl.stats().bytes_written, 128);
        assert!(ctrl.stats().mean_latency() > 0.0);
    }

    #[test]
    fn component_impl_reports_idle_correctly() {
        let mut ctrl = MemoryController::new(3, HbmTiming::hbm2(), 8);
        assert!(Component::is_idle(&ctrl));
        ctrl.submit(MemoryRequest::read(0, 64), Cycle(0)).unwrap();
        assert!(!Component::is_idle(&ctrl));
        assert_eq!(Component::name(&ctrl), "mem-controller-3");
    }

    #[test]
    fn loaded_channel_has_higher_latency_than_unloaded() {
        let mut light = MemoryController::new(0, HbmTiming::hbm2(), 256);
        light.submit(MemoryRequest::read(0, 64), Cycle(0)).unwrap();
        drive(&mut light, 500);

        let mut heavy = MemoryController::new(0, HbmTiming::hbm2(), 256);
        for i in 0..200u64 {
            heavy.submit(MemoryRequest::read(i * 8192, 64), Cycle(0)).unwrap();
        }
        drive(&mut heavy, 5_000);
        assert!(heavy.stats().mean_latency() > light.stats().mean_latency());
        assert!(heavy.stats().peak_in_flight > 1);
    }
}
