//! Quickstart: run a sparse matrix multiplication on the NeuraChip model and
//! check it against the reference Gustavson kernel.
//!
//! Run with `cargo run --release --example quickstart`.

use neurachip_repro::chip::accelerator::Accelerator;
use neurachip_repro::chip::config::ChipConfig;
use neurachip_repro::sparse::gen::GraphGenerator;
use neurachip_repro::sparse::spgemm;

fn main() {
    // 1. Build a small scale-free graph (the adjacency matrix A).
    let a = GraphGenerator::power_law(256, 2_000, 2.1, 42).generate().to_csr();
    println!("graph: {} nodes, {} edges, {:.3}% sparse", a.rows(), a.nnz(), a.sparsity() * 100.0);

    // 2. Run the aggregation-style SpGEMM A x A on the Tile-16 NeuraChip.
    let mut chip = Accelerator::new(ChipConfig::tile_16());
    let run = chip.run_spgemm(&a, &a).expect("simulation drains");

    // 3. Verify the accelerator's output against the reference kernel.
    let reference = spgemm::gustavson(&a, &a);
    let diff = run.product.to_dense().max_abs_diff(&reference.to_dense()).expect("shapes match");
    println!("output nnz            : {}", run.product.nnz());
    println!("max |simulated - ref| : {diff:.2e}");
    assert!(diff < 1e-9, "accelerator output must match the reference");

    // 4. Inspect the headline statistics.
    let r = &run.report;
    println!("total cycles          : {}", r.total_cycles);
    println!("MMH4 instructions     : {}", r.mmh_instructions);
    println!("HACC instructions     : {}", r.hacc_instructions);
    println!("average MMH CPI       : {:.1}", r.cpi);
    println!("achieved GOP/s        : {:.2}", r.gops);
    println!("core utilisation      : {:.1}%", r.core_utilization * 100.0);
    println!("peak HashPad occupancy: {}", r.peak_hashpad_occupancy);
    println!("DRAM read / written   : {} / {} bytes", r.dram_bytes_read, r.dram_bytes_written);
}
