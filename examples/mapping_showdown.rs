//! Compare the four compute-mapping algorithms (ring, modular, random table,
//! DRHM) on a skewed social-network workload — the experiment behind the
//! paper's Figures 12/13 — and show how the mapping choice affects both the
//! load balance and the end-to-end cycle count.
//!
//! Run with `cargo run --release --example mapping_showdown`.

use neurachip_repro::chip::accelerator::Accelerator;
use neurachip_repro::chip::config::ChipConfig;
use neurachip_repro::chip::mapping::MappingKind;
use neurachip_repro::sparse::gen::GraphGenerator;
use neurachip_repro::sparse::stats::{gini, imbalance};

fn main() {
    // A deliberately skewed graph: a few hub nodes own most of the edges,
    // which is exactly the pattern that breaks ring/modular hashing.
    let a = GraphGenerator::power_law(384, 3_500, 1.9, 13).generate().to_csr();
    println!("workload: {} nodes, {} edges (power-law, heavily skewed)\n", a.rows(), a.nnz());
    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "mapping", "cycles", "max/mean", "CV", "Gini", "core util %"
    );

    let mut best: Option<(MappingKind, u64)> = None;
    for kind in MappingKind::ALL {
        let mut chip = Accelerator::new(ChipConfig::tile_16().with_mapping(kind));
        let run = chip.run_spgemm(&a, &a).expect("simulation drains");
        let (max_over_mean, cv) = imbalance(&run.report.mem_work_histogram);
        println!(
            "{:<14} {:>10} {:>12.3} {:>10.3} {:>10.3} {:>12.1}",
            kind.name(),
            run.report.total_cycles,
            max_over_mean,
            cv,
            gini(&run.report.mem_work_histogram),
            run.report.core_utilization * 100.0,
        );
        if best.is_none_or(|(_, cycles)| run.report.total_cycles < cycles) {
            best = Some((kind, run.report.total_cycles));
        }
    }

    let (winner, cycles) = best.expect("at least one mapping ran");
    println!("\nbest mapping on this workload: {} ({} cycles)", winner.name(), cycles);
    println!(
        "expected shape: ring/modular hashing concentrate partial products on a few\n\
         NeuraMems (high max/mean and Gini); DRHM tracks the ideal random table while\n\
         storing only a per-row seed."
    );
}
