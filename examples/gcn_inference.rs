//! Run a two-layer Graph Convolutional Network forward pass (the workload the
//! paper's introduction motivates) on the NeuraChip model, using a synthetic
//! analog of the Cora citation graph.
//!
//! Run with `cargo run --release --example gcn_inference`.

use neurachip_repro::chip::accelerator::Accelerator;
use neurachip_repro::chip::config::ChipConfig;
use neurachip_repro::chip::gcn::run_gcn_layer;
use neurachip_repro::sparse::gen::{feature_matrix, weight_matrix};
use neurachip_repro::sparse::spmm;
use neurachip_repro::sparse::DatasetCatalog;

fn main() {
    // Cora analog, scaled down 4x so the cycle-level simulation stays fast.
    let cora = DatasetCatalog::by_name("cora").expect("cora is in the catalog");
    let mut adjacency = cora.generate_scaled(4, 7).to_csr();
    adjacency.row_normalize();
    let nodes = adjacency.rows();

    // Layer dimensions: 64 input features -> 32 hidden -> 7 classes.
    let features = feature_matrix(nodes, 64, 1);
    let w1 = weight_matrix(64, 32, 2);
    let w2 = weight_matrix(32, 7, 3);

    let mut chip = Accelerator::new(ChipConfig::tile_16());

    println!("GCN inference on a Cora analog ({nodes} nodes, {} edges)", adjacency.nnz());

    // Layer 1.
    let layer1 = run_gcn_layer(&mut chip, &adjacency, &features, &w1).expect("layer 1 runs");
    println!("\nlayer 1:");
    println!("  aggregation cycles : {}", layer1.breakdown.aggregation_cycles);
    println!("  combination cycles : {}", layer1.breakdown.combination_cycles);
    println!("  layer GFLOP/s      : {:.2}", layer1.breakdown.gops);

    // Layer 2 consumes layer 1's activations.
    let layer2 = run_gcn_layer(&mut chip, &adjacency, &layer1.output, &w2).expect("layer 2 runs");
    println!("\nlayer 2:");
    println!("  aggregation cycles : {}", layer2.breakdown.aggregation_cycles);
    println!("  combination cycles : {}", layer2.breakdown.combination_cycles);
    println!("  layer GFLOP/s      : {:.2}", layer2.breakdown.gops);

    // Functional check of the full network against the reference math.
    let ref1 = spmm::gcn_layer(&adjacency, &features, &w1).expect("reference layer 1");
    let ref2 = spmm::gcn_layer(&adjacency, &ref1, &w2).expect("reference layer 2");
    let diff = layer2.output.max_abs_diff(&ref2).expect("shapes match");
    println!("\nmax |simulated - reference| over the 2-layer network: {diff:.2e}");
    assert!(diff < 1e-6, "NeuraChip GCN output must match the reference");

    let total_cycles = layer1.breakdown.aggregation_cycles
        + layer1.breakdown.combination_cycles
        + layer2.breakdown.aggregation_cycles
        + layer2.breakdown.combination_cycles;
    println!("total network cycles: {total_cycles} ({:.3} ms at 1 GHz)", total_cycles as f64 / 1e6);
}
