//! Property-based integration tests over the full stack: for arbitrary small
//! graphs the simulated accelerator must agree with the reference kernels and
//! its statistics must satisfy conservation invariants.

use neurachip_repro::chip::accelerator::Accelerator;
use neurachip_repro::chip::config::ChipConfig;
use neurachip_repro::sparse::{spgemm, CooMatrix};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = neurachip_repro::sparse::CsrMatrix> {
    (8usize..48, 1usize..150).prop_flat_map(|(nodes, edges)| {
        proptest::collection::vec((0..nodes, 0..nodes, 0.25f64..4.0), 1..=edges).prop_map(
            move |entries| {
                let mut coo = CooMatrix::new(nodes, nodes);
                for (r, c, v) in entries {
                    coo.push(r, c, v).unwrap();
                }
                coo.to_csr()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The accelerator's SpGEMM output equals the reference for arbitrary graphs.
    #[test]
    fn accelerator_matches_reference_on_arbitrary_graphs(a in arb_graph()) {
        let mut chip = Accelerator::new(ChipConfig::tile_4());
        let run = chip.run_spgemm(&a, &a).expect("simulation drains");
        let reference = spgemm::gustavson(&a, &a);
        prop_assert_eq!(run.product.nnz(), reference.nnz());
        prop_assert!(run.product.to_dense().max_abs_diff(&reference.to_dense()).unwrap() < 1e-9);
    }

    /// Conservation: every generated partial product is accumulated exactly
    /// once and every output element is evicted exactly once.
    #[test]
    fn partial_products_are_conserved(a in arb_graph()) {
        let (_, stats) = spgemm::multiply_counting(&a, &a);
        let mut chip = Accelerator::new(ChipConfig::tile_4());
        let run = chip.run_spgemm(&a, &a).expect("simulation drains");
        prop_assert_eq!(run.report.hacc_instructions, stats.multiplications);
        prop_assert_eq!(
            run.report.core_work_histogram.iter().sum::<u64>(),
            stats.multiplications
        );
        prop_assert_eq!(run.report.evictions as usize, stats.output_nnz);
        prop_assert_eq!(run.report.noc_packets, stats.multiplications);
    }
}
