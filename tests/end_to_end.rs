//! Cross-crate integration tests: workload generation → compilation →
//! cycle-level simulation → functional verification against the reference
//! kernels, plus the analytical baseline comparisons built on top.

use neurachip_repro::baselines::spgemm::{SpgemmModel, SpgemmPlatform};
use neurachip_repro::baselines::WorkloadProfile;
use neurachip_repro::chip::accelerator::Accelerator;
use neurachip_repro::chip::config::{ChipConfig, EvictionPolicy, TileSize};
use neurachip_repro::chip::gcn::run_gcn_layer;
use neurachip_repro::chip::mapping::MappingKind;
use neurachip_repro::chip::power::PowerModel;
use neurachip_repro::sparse::gen::{feature_matrix, weight_matrix, GraphGenerator};
use neurachip_repro::sparse::{bloat, spgemm, spmm, DatasetCatalog};

/// The full SpGEMM path on a dataset-catalog analog matches the reference
/// kernel bit-for-bit in structure and to 1e-9 in values.
#[test]
fn spgemm_on_dataset_analog_matches_reference() {
    let dataset = DatasetCatalog::by_name("wiki-Vote").expect("dataset exists");
    let a = dataset.generate_scaled(64, 11).to_csr();
    let mut chip = Accelerator::new(ChipConfig::tile_16());
    let run = chip.run_spgemm(&a, &a).expect("simulation drains");
    let reference = spgemm::gustavson(&a, &a);
    assert_eq!(run.product.nnz(), reference.nnz());
    assert!(run.product.to_dense().max_abs_diff(&reference.to_dense()).unwrap() < 1e-9);
    // The simulated partial-product count matches the bloat analysis.
    let report = bloat::analyze_square(&a);
    assert_eq!(run.report.hacc_instructions, report.intermediate_partial_products);
}

/// A GCN layer on the accelerator matches the reference dense math for every
/// tile configuration.
#[test]
fn gcn_layer_is_correct_on_every_tile_size() {
    let mut a = GraphGenerator::power_law(96, 600, 2.1, 5).generate().to_csr();
    a.row_normalize();
    let x = feature_matrix(96, 8, 1);
    let w = weight_matrix(8, 4, 2);
    let reference = spmm::gcn_layer(&a, &x, &w).unwrap();
    for tile in TileSize::ALL {
        let mut chip = Accelerator::new(ChipConfig::for_tile_size(tile));
        let run = run_gcn_layer(&mut chip, &a, &x, &w).expect("layer runs");
        let diff = run.output.max_abs_diff(&reference).unwrap();
        assert!(diff < 1e-9, "{} diverged by {diff:e}", tile.name());
    }
}

/// Every compute mapping produces correct results and DRHM's load balance is
/// no worse than ring hashing on a skewed workload.
#[test]
fn mappings_are_correct_and_drhm_balances() {
    use neurachip_repro::sparse::stats::imbalance;
    let a = GraphGenerator::power_law(128, 1_000, 1.9, 21).generate().to_csr();
    let reference = spgemm::gustavson(&a, &a);
    let mut balance = std::collections::HashMap::new();
    for kind in MappingKind::ALL {
        let mut chip = Accelerator::new(ChipConfig::tile_16().with_mapping(kind));
        let run = chip.run_spgemm(&a, &a).expect("simulation drains");
        assert!(
            run.product.to_dense().max_abs_diff(&reference.to_dense()).unwrap() < 1e-9,
            "{} mapping gave wrong results",
            kind.name()
        );
        balance.insert(kind, imbalance(&run.report.mem_work_histogram).0);
    }
    assert!(balance[&MappingKind::Drhm] <= balance[&MappingKind::Ring] * 1.05);
}

/// Rolling eviction reduces HashPad pressure relative to barrier eviction
/// while producing identical results — the paper's core Figure 15 claim.
#[test]
fn rolling_eviction_reduces_pad_pressure() {
    let a = GraphGenerator::power_law(128, 1_200, 2.0, 8).generate().to_csr();
    let run = |policy| {
        let mut chip = Accelerator::new(ChipConfig::tile_4().with_eviction(policy));
        chip.run_spgemm(&a, &a).expect("simulation drains")
    };
    let rolling = run(EvictionPolicy::Rolling);
    let barrier = run(EvictionPolicy::Barrier);
    assert_eq!(rolling.product.nnz(), barrier.product.nnz());
    assert!(
        rolling.report.peak_hashpad_occupancy < barrier.report.peak_hashpad_occupancy,
        "rolling {} vs barrier {}",
        rolling.report.peak_hashpad_occupancy,
        barrier.report.peak_hashpad_occupancy
    );
    assert!(
        rolling.report.hacc_latency_histogram.mean()
            <= barrier.report.hacc_latency_histogram.mean()
    );
}

/// The analytical comparison reproduces the paper's headline ordering: the
/// simulated NeuraChip configuration beats the modelled CPU, GPUs and prior
/// accelerators on the evaluated workload.
#[test]
fn figure16_headline_ordering_holds() {
    let dataset = DatasetCatalog::by_name("ca-CondMat").expect("dataset exists");
    let a = dataset.generate_scaled(128, 5).to_csr();
    let profile = WorkloadProfile::from_square(dataset.name, &a);
    let ours = SpgemmPlatform::NeuraChip { tile: 16 }.estimate(&profile);
    let mut previous = f64::MAX;
    // Ordered from slowest to fastest baseline per the paper.
    for platform in [
        SpgemmPlatform::CpuMkl,
        SpgemmPlatform::OuterSpace,
        SpgemmPlatform::SpArch,
        SpgemmPlatform::Gamma,
    ] {
        let estimate = platform.estimate(&profile);
        let speedup = ours.speedup_over(&estimate);
        assert!(speedup > 1.0, "NeuraChip should beat {}", platform.name());
        assert!(speedup <= previous * 1.5, "ordering roughly follows the paper");
        previous = speedup;
    }
}

/// Power/area model and execution statistics compose into efficiency metrics
/// within the paper's reported ranges.
#[test]
fn efficiency_metrics_are_in_reported_range() {
    let model = PowerModel::calibrated();
    let breakdown = model.breakdown(&ChipConfig::tile_16());
    // Paper: Tile-16 achieves 24.75 GOP/s => 1.541 GOPS/W and 2.426 GOPS/mm².
    let eff = breakdown.energy_efficiency(24.75);
    let area_eff = breakdown.area_efficiency(24.75);
    assert!((eff - 1.541).abs() < 0.05);
    assert!((area_eff - 2.426).abs() < 0.05);
}

/// Determinism: two runs with the same configuration and workload produce
/// identical cycle counts and statistics.
#[test]
fn simulation_is_deterministic() {
    let a = GraphGenerator::rmat(7, 700, 3).generate().to_csr();
    let run = || {
        let mut chip = Accelerator::new(ChipConfig::tile_4());
        chip.run_spgemm(&a, &a).expect("simulation drains").report
    };
    let first = run();
    let second = run();
    assert_eq!(first.total_cycles, second.total_cycles);
    assert_eq!(first.hacc_instructions, second.hacc_instructions);
    assert_eq!(first.core_work_histogram, second.core_work_histogram);
    assert_eq!(first.mem_work_histogram, second.mem_work_histogram);
}
