//! Offline stub of `serde`.
//!
//! Exposes just enough surface for `use serde::{Deserialize, Serialize}`
//! plus `#[derive(Serialize, Deserialize)]` to compile: the two marker
//! traits and the (no-op) derive macros.  No data format integrates with
//! this stub; replace the `vendor/serde` path dependency with the real
//! crates.io `serde` when network access is available.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
