//! Offline stub of `serde_derive`.
//!
//! The real crates.io dependency is unavailable in this environment (no
//! network access at build time), and nothing in the workspace actually
//! serialises values yet — the `#[derive(Serialize, Deserialize)]`
//! annotations only declare intent for future tooling.  These derive macros
//! therefore expand to nothing; swap this path dependency for the real
//! `serde`/`serde_derive` when network access is available.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
