//! Offline mini-reimplementation of the `proptest` crate surface this
//! workspace uses.
//!
//! Supports [`Strategy`] over numeric ranges and tuples, `prop_map` /
//! `prop_flat_map`, [`collection::vec`], [`ProptestConfig`] and the
//! [`proptest!`] / `prop_assert*` macros.  Differences from the real crate:
//! no shrinking (a failing case reports its index and message only) and a
//! fixed deterministic seed per test derived from the test name, so failures
//! reproduce exactly.  Swap the `vendor/proptest` path dependency for the
//! real crate when network access is available.

#![warn(missing_docs)]

pub mod test_runner {
    //! The tiny deterministic runner behind the [`crate::proptest!`] macro.

    /// Deterministic SplitMix64 generator used to produce test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator seeded from an arbitrary string (the test name).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi]`.
        pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u64;
            if span == u64::MAX {
                return self.next_u64() as usize;
            }
            lo + (self.next_u64() % (span + 1)) as usize
        }
    }

    /// Runtime configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config identical to the default except for the case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Strategy generating a fixed value (clone per case).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32, u16, u8);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            (self.start + rng.next_f64() * (self.end - self.start)).max(self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            (lo + rng.next_f64() * (hi - lo)).clamp(lo, hi)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Strategies for collections (only `Vec` is needed here).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on the length of a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy generating `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_inclusive(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Creates a strategy generating vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?} at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

/// Skips the current case when its assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(file!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("property {} failed at case {}/{}: {}", stringify!($name), case + 1, config.cases, message);
                    }
                }
            }
        )*
    };
}
