//! Offline stub of the `rand` crate.
//!
//! Provides exactly the surface this workspace consumes — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`] over
//! float and integer ranges — backed by a deterministic SplitMix64 generator.
//! The stream differs from crates.io `rand`, which is acceptable because every
//! caller in this repository only relies on *seeded determinism*, never on a
//! specific sequence.  Swap the `vendor/rand` path dependency for the real
//! crate when network access is available.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` built from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be constructed from a numeric seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types sampleable by [`Rng::gen`] (stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = rng.next_f64();
        (self.start + u * (self.end - self.start)).max(self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_sample_range!(i64 => u64, i32 => u32, i16 => u16, i8 => u8, isize => usize);

/// Ergonomic sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over its `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators (the stub only ships [`rngs::StdRng`]).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state: state.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): one addition + two xor-shifts.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z = rng.gen_range(0u64..=5);
            assert!(z <= 5);
            let w = rng.gen_range(0.01f64..=1.0);
            assert!((0.01..=1.0).contains(&w));
        }
    }

    #[test]
    fn f64_is_half_open() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
