//! Offline stub of the `criterion` benchmarking crate.
//!
//! Implements the subset of the API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`] — with plain wall-clock timing and no statistics.
//! When invoked by `cargo test` (which runs `harness = false` bench targets
//! as smoke tests) each benchmark body executes once; under `cargo bench` a
//! small fixed sample is timed and the mean is printed.  Swap the
//! `vendor/criterion` path dependency for the real crate when network access
//! is available.
//!
//! Beyond the crates.io surface, the stub routes its measurements into the
//! workspace's machine-readable artifact format: when the [`JSON_ENV`]
//! environment variable is set, [`criterion_main!`] ends by writing every
//! recorded measurement as a `neura_lab.artifact/v1` document (the same
//! schema the figure/table binaries emit via `--json`), so micro- and
//! macro-benchmarks share one format. The JSON is hand-rolled here — the
//! stub stays dependency-free — but `neura_lab`'s parser round-trips it;
//! see `crates/bench/tests/criterion_artifact.rs`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Environment variable opting benchmark runs into artifact emission: its
/// value is the output directory (an empty value means the default
/// `target/artifacts`), and each bench target writes
/// `<dir>/bench_<target>.json`.
pub const JSON_ENV: &str = "NEURA_CRITERION_JSON";

/// One finished measurement, queued for artifact emission.
#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    mean_seconds: f64,
    iterations: u64,
}

fn results() -> &'static Mutex<Vec<BenchResult>> {
    static RESULTS: OnceLock<Mutex<Vec<BenchResult>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Drains every measurement recorded so far and, when [`JSON_ENV`] is set,
/// writes them as a `neura_lab.artifact/v1` document named after the bench
/// target. Called by [`criterion_main!`] after the groups run; callable
/// directly by tests.
pub fn emit_artifact(target: &str) {
    let records = std::mem::take(&mut *results().lock().expect("bench results poisoned"));
    let Ok(dir) = std::env::var(JSON_ENV) else {
        return;
    };
    let dir = if dir.is_empty() { "target/artifacts".to_string() } else { dir };
    let path = std::path::Path::new(&dir).join(format!("bench_{target}.json"));

    let mut body = String::new();
    body.push_str("{\n  \"schema\": \"neura_lab.artifact/v1\",\n");
    body.push_str(&format!("  \"bin\": \"bench_{}\",\n", escape_json(target)));
    body.push_str("  \"scale_mult\": 1,\n  \"records\": [");
    for (i, result) in records.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "\n    {{\n      \"id\": \"bench_{}/{}\",\n      \"params\": {{}},\n      \
             \"metrics\": [\n        {{\"name\": \"mean_seconds\", \"value\": {:?}, \
             \"unit\": \"s\"}},\n        {{\"name\": \"iterations\", \"value\": {:?}}}\n      ]\n    }}",
            escape_json(target),
            escape_json(&result.id),
            result.mean_seconds,
            result.iterations as f64,
        ));
    }
    body.push_str(if records.is_empty() { "]\n}" } else { "\n  ]\n}" });

    if let Some(parent) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("criterion: cannot create {}: {e}", parent.display());
            std::process::exit(1);
        }
    }
    if let Err(e) = std::fs::write(&path, format!("{body}\n")) {
        eprintln!("criterion: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {} ({} records)", path.display(), records.len());
}

/// Minimal JSON string escaping for benchmark ids.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How many timed iterations to run per benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo test` smoke run: execute each body once, report pass/fail.
    Smoke,
    /// `cargo bench`: time a small fixed sample and print the mean.
    Measure,
}

fn detect_mode() -> Mode {
    // Cargo invokes `harness = false` bench targets with `--bench` under
    // `cargo bench`; under `cargo test` they run with `--test`-style args or
    // none at all.  Default to the cheap smoke mode.
    if std::env::args().any(|a| a == "--bench") {
        Mode::Measure
    } else {
        Mode::Smoke
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { mode: detect_mode() }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let mode = self.mode;
        BenchmarkGroup { _criterion: self, name, mode, samples: 10 }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut bencher =
            Bencher { mode: self.mode, samples: 10, elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher);
        bencher.report(&id.into());
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    mode: Mode,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (cap honoured only under `cargo bench`).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher =
            Bencher { mode: self.mode, samples: self.samples, elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher =
            Bencher { mode: self.mode, samples: self.samples, elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, once in smoke mode or `samples` times under `cargo bench`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let iters = match self.mode {
            Mode::Smoke => 1,
            Mode::Measure => self.samples as u64,
        };
        let start = Instant::now();
        for _ in 0..iters {
            hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("  {id}: no iterations");
        } else {
            let mean = self.elapsed / self.iters as u32;
            println!("  {id}: {mean:?}/iter over {} iter(s)", self.iters);
            results().lock().expect("bench results poisoned").push(BenchResult {
                id: id.to_string(),
                mean_seconds: self.elapsed.as_secs_f64() / self.iters as f64,
                iterations: self.iters,
            });
        }
    }
}

/// Collects benchmark functions into a single runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, then emitting the artifact when
/// [`JSON_ENV`] requests one (the target name comes from the bench's own
/// compile-time crate name).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::emit_artifact(env!("CARGO_CRATE_NAME"));
        }
    };
}
