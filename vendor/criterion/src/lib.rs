//! Offline stub of the `criterion` benchmarking crate.
//!
//! Implements the subset of the API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`] — with plain wall-clock timing and no statistics.
//! When invoked by `cargo test` (which runs `harness = false` bench targets
//! as smoke tests) each benchmark body executes once; under `cargo bench` a
//! small fixed sample is timed and the mean is printed.  Swap the
//! `vendor/criterion` path dependency for the real crate when network access
//! is available.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How many timed iterations to run per benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo test` smoke run: execute each body once, report pass/fail.
    Smoke,
    /// `cargo bench`: time a small fixed sample and print the mean.
    Measure,
}

fn detect_mode() -> Mode {
    // Cargo invokes `harness = false` bench targets with `--bench` under
    // `cargo bench`; under `cargo test` they run with `--test`-style args or
    // none at all.  Default to the cheap smoke mode.
    if std::env::args().any(|a| a == "--bench") {
        Mode::Measure
    } else {
        Mode::Smoke
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { mode: detect_mode() }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let mode = self.mode;
        BenchmarkGroup { _criterion: self, name, mode, samples: 10 }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut bencher =
            Bencher { mode: self.mode, samples: 10, elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher);
        bencher.report(&id.into());
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    mode: Mode,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (cap honoured only under `cargo bench`).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher =
            Bencher { mode: self.mode, samples: self.samples, elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher =
            Bencher { mode: self.mode, samples: self.samples, elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, once in smoke mode or `samples` times under `cargo bench`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let iters = match self.mode {
            Mode::Smoke => 1,
            Mode::Measure => self.samples as u64,
        };
        let start = Instant::now();
        for _ in 0..iters {
            hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("  {id}: no iterations");
        } else {
            let mean = self.elapsed / self.iters as u32;
            println!("  {id}: {mean:?}/iter over {} iter(s)", self.iters);
        }
    }
}

/// Collects benchmark functions into a single runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
