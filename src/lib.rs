//! Umbrella crate: re-exports the NeuraChip reproduction workspace crates for examples and integration tests.
pub use neura_baselines as baselines;
pub use neura_chip as chip;
pub use neura_lab as lab;
pub use neura_mem as mem;
pub use neura_noc as noc;
pub use neura_serve as serve;
pub use neura_sim as sim;
pub use neura_sparse as sparse;
