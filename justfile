# Local mirror of .github/workflows/ci.yml — `just ci` before pushing.

# The 11 paper-artifact binaries (keep in sync with the loop in ci.yml and
# the BINARIES table in crates/bench/tests/bin_smoke.rs, which additionally
# covers the `tune` binary — it takes its own flags, see `just tune`).
bins := "table1 table3 table4 table5 fig11 fig13 fig14 fig15 fig16 fig17 ablation"

# Run everything CI runs.
ci: fmt clippy build test artifacts tune

# Formatting check (apply with `just fmt-fix`).
fmt:
    cargo fmt --check

fmt-fix:
    cargo fmt

# Lints, warnings are errors.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Release build of every crate and binary.
build:
    cargo build --release

# Unit, integration, doc and bin-smoke tests.
test:
    cargo test -q

# Run all 11 binaries at smoke scale with --json and collect the
# machine-readable artifacts under target/artifacts/ (what CI uploads).
artifacts:
    for bin in {{bins}}; do \
        NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin $bin -- --json || exit 1; \
    done
    ls -l target/artifacts/

# Regenerate every paper artifact at full (scaled) size, with strict
# golden checks against the pinned headline numbers. Slow.
artifacts-paper:
    for bin in {{bins}}; do \
        cargo run --release -q -p neura_bench --bin $bin -- --json || exit 1; \
    done
    ls -l target/artifacts/

# Successive-halving ChipConfig auto-tuner at smoke scale, all datasets;
# artifact collected at target/artifacts/tune.json.
tune:
    NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin tune -- --json
    ls -l target/artifacts/tune.json

# The tuner at paper scale (very slow): the fidelity ladder climbs to
# 256-2000-node analogs (the same node band the cycle-level figure
# binaries simulate).
tune-paper:
    cargo run --release -q -p neura_bench --bin tune -- --json
    ls -l target/artifacts/tune.json

# Criterion micro-benchmarks (stubbed offline: single-pass wall-clock timing).
bench:
    cargo bench -p neura_bench
