# Local mirror of .github/workflows/ci.yml — `just ci` before pushing.

# Run everything CI runs.
ci: fmt clippy build test

# Formatting check (apply with `just fmt-fix`).
fmt:
    cargo fmt --check

fmt-fix:
    cargo fmt

# Lints, warnings are errors.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Release build of every crate and binary.
build:
    cargo build --release

# Unit, integration, doc and bin-smoke tests.
test:
    cargo test -q

# Regenerate every paper artifact at full (scaled) size.
artifacts:
    for bin in table1 table3 table4 table5 fig11 fig13 fig14 fig15 fig16 fig17 ablation; do \
        cargo run --release -q -p neura_bench --bin $bin; \
    done

# Criterion micro-benchmarks (stubbed offline: single-pass wall-clock timing).
bench:
    cargo bench -p neura_bench
