# Local mirror of .github/workflows/ci.yml — `just ci` before pushing.

# The 11 paper-artifact binaries (keep in sync with the loop in ci.yml and
# the BINARIES table in crates/bench/tests/bin_smoke.rs, which additionally
# covers the `tune` and `serve` binaries — they take their own flags, see
# `just tune` / `just serve`).
bins := "table1 table3 table4 table5 fig11 fig13 fig14 fig15 fig16 fig17 ablation"

# Run everything CI runs.
ci: fmt clippy build test artifacts tune serve serve-parallel trace xval profile

# Formatting check (apply with `just fmt-fix`).
fmt:
    cargo fmt --check

fmt-fix:
    cargo fmt

# Lints, warnings are errors.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Release build of every crate and binary.
build:
    cargo build --release

# Unit, integration, doc and bin-smoke tests.
test:
    cargo test -q

# Run all 11 binaries at smoke scale with --json and collect the
# machine-readable artifacts under target/artifacts/ (what CI uploads).
artifacts:
    for bin in {{bins}}; do \
        NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin $bin -- --json || exit 1; \
    done
    ls -l target/artifacts/

# Regenerate every paper artifact at full (scaled) size, with strict
# golden checks against the pinned headline numbers. Slow.
artifacts-paper:
    for bin in {{bins}}; do \
        cargo run --release -q -p neura_bench --bin $bin -- --json || exit 1; \
    done
    ls -l target/artifacts/

# Successive-halving ChipConfig auto-tuner at smoke scale, all datasets;
# artifact collected at target/artifacts/tune.json.
tune:
    NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin tune -- --json
    ls -l target/artifacts/tune.json

# The tuner at paper scale (very slow): the fidelity ladder climbs to
# 256-2000-node analogs (the same node band the cycle-level figure
# binaries simulate).
tune-paper:
    cargo run --release -q -p neura_bench --bin tune -- --json
    ls -l target/artifacts/tune.json

# Request-stream serving simulation at smoke scale. The default run
# covers the classic shard-scaling sweep plus one heterogeneous
# (Tile-64 + Tile-4, all three dispatch policies), one closed-loop and
# one autoscaled scenario; artifact at target/artifacts/serve.json.
serve:
    NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin serve -- --json
    ls -l target/artifacts/serve.json

# Parallel-in-time serving engine checks: the smoke sweep replayed as 3
# epoch fragments on 2 and 8 workers must reproduce the serial artifact
# byte for byte (--no-meta strips the wall-clock meta so cmp is exact);
# the serial artifact is additionally gated byte-for-byte against the
# committed baseline (re-baseline deliberately with
# `just serve-rebaseline`); and the --speedup demo replays one 100k-client
# closed-loop lane scenario pinned to one thread and on the full pool,
# asserting identical outcomes and reporting the measured speedup.
serve-parallel:
    NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin serve -- \
        --json target/artifacts/serve-serial.json --no-meta
    NEURA_LAB_THREADS=2 NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin serve -- \
        --json target/artifacts/serve-epochs-t2.json --no-meta --epochs 3
    NEURA_LAB_THREADS=8 NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin serve -- \
        --json target/artifacts/serve-epochs-t8.json --no-meta --epochs 3
    cmp target/artifacts/serve-serial.json target/artifacts/serve-epochs-t2.json
    cmp target/artifacts/serve-serial.json target/artifacts/serve-epochs-t8.json
    cargo run --release -q -p neura_bench --bin trend -- \
        baselines/serve-smoke.json target/artifacts/serve-serial.json --fail-above 0
    NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin serve -- --speedup --lanes 8

# Refresh the committed serving smoke baseline after an intentional
# serving-layer change (review the trend diff first).
serve-rebaseline:
    NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin serve -- \
        --json target/artifacts/serve-serial.json --no-meta
    cp target/artifacts/serve-serial.json baselines/serve-smoke.json

# The serving sweep with request-lifecycle tracing on: besides
# serve.json (byte-identical to an untraced run), writes the windowed
# neura_lab.timeline/v1 artifact to target/artifacts/timeline.json and
# summarises it — worst-window p99 vs the aggregate, crash recovery,
# windowed SLO attainment — through the timeline binary.
trace:
    NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin serve -- --json --trace
    cargo run --release -q -p neura_bench --bin timeline
    ls -l target/artifacts/timeline.json

# Serving scenarios at paper scale: memoised request costs come from
# 256-2000-node cycle-level simulations, so tail latencies are in the
# realistic millisecond band. Slow.
serve-paper:
    cargo run --release -q -p neura_bench --bin serve -- --json
    ls -l target/artifacts/serve.json

# The scenario-library and failure-injection property suites alone:
# pinned load-shedding, tenant rate-limit, crash/recovery and
# thread-invariance properties (part of `just test`, split out for a
# fast signal while iterating on the serving layer).
scenarios:
    cargo test -p neura_serve --test scenario_properties --test fault_properties

# Sampled cross-validation of the analytic cost model at smoke scale:
# a three-dataset slice of the (dataset x tile x HBM) grid, gated
# byte-for-byte against the committed baseline (the cycle sims and the
# closed-form model are both deterministic, so any drift is a real model
# or simulator change and must be re-baselined deliberately via
# `just xval-rebaseline`).
xval:
    NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin xval -- --json \
        --dataset facebook --dataset wiki-Vote --dataset cage12
    cargo run --release -q -p neura_bench --bin trend -- \
        baselines/xval-smoke.json target/artifacts/xval.json --fail-above 0

# Refresh the committed smoke baseline after an intentional model or
# simulator change (review the trend diff first).
xval-rebaseline:
    NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin xval -- --json \
        --dataset facebook --dataset wiki-Vote --dataset cage12
    cp target/artifacts/xval.json baselines/xval-smoke.json

# Full cross-validation at paper scale: all 20 datasets, size-matched
# tiles, all three HBM presets, with the strict golden (mean abs rel
# error <= 5%, worst <= 15%) enforced. Slow (~2 min of cycle sims).
xval-paper:
    cargo run --release -q -p neura_bench --bin xval -- --json
    ls -l target/artifacts/xval.json

# Chip profiler sweep at smoke scale: a three-dataset slice of the
# (dataset x tile x HBM) grid with windowed stall attribution, gated
# byte-for-byte against the committed baseline (the profiled simulations
# are deterministic, so any drift is a real simulator or profiler change
# and must be re-baselined deliberately via `just profile-rebaseline`).
# Conservation is enforced even at smoke scale.
profile:
    NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin profile -- --json \
        --dataset facebook --dataset wiki-Vote --dataset cage12 --require-conservation
    cargo run --release -q -p neura_bench --bin trend -- \
        baselines/profile-smoke.json target/artifacts/profile.json --fail-above 0

# Refresh the committed smoke baseline after an intentional simulator or
# profiler change (review the trend diff first).
profile-rebaseline:
    NEURA_BENCH_SCALE_MULT=32 cargo run --release -q -p neura_bench --bin profile -- --json \
        --dataset facebook --dataset wiki-Vote --dataset cage12 --require-conservation
    cp target/artifacts/profile.json baselines/profile-smoke.json

# The full profiler sweep at paper scale: all 20 datasets on size-matched
# tiles across the HBM presets, strict conservation golden enforced.
# Slow (~minutes of cycle sims).
profile-paper:
    cargo run --release -q -p neura_bench --bin profile -- --json
    ls -l target/artifacts/profile.json

# Diff two artifact files or directories (e.g. a saved copy of
# target/artifacts/ against a fresh run): per-metric absolute/relative
# deltas. Add flags via just trend a b "--fail-above 2".
trend before after *flags="":
    cargo run --release -q -p neura_bench --bin trend -- {{before}} {{after}} {{flags}}

# Criterion micro-benchmarks (stubbed offline: single-pass wall-clock
# timing); measurements are also collected as lab artifacts under
# target/artifacts/bench_*.json.
bench:
    NEURA_CRITERION_JSON=target/artifacts cargo bench -p neura_bench
